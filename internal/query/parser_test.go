package query

import (
	"strings"
	"testing"

	"cepshed/internal/event"
)

func TestParseQ1Shape(t *testing.T) {
	q := Q1("8ms")
	if len(q.Pattern) != 3 {
		t.Fatalf("pattern length = %d", len(q.Pattern))
	}
	for i, want := range []string{"A", "B", "C"} {
		if q.Pattern[i].Type != want {
			t.Errorf("component %d type = %s", i, q.Pattern[i].Type)
		}
		if q.Pattern[i].Kleene || q.Pattern[i].Negated {
			t.Errorf("component %d should be plain", i)
		}
	}
	if len(q.Where) != 3 {
		t.Errorf("predicates = %d, want 3", len(q.Where))
	}
	if q.Window.Duration != 8*event.Millisecond {
		t.Errorf("window = %v", q.Window.Duration)
	}
}

func TestParseKleeneComponent(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, A+ b[]{2,5}, B c) WHERE a.ID=b[i].ID WITHIN 1ms`)
	k := q.Pattern[1]
	if !k.Kleene || k.MinReps != 2 || k.MaxReps != 5 {
		t.Errorf("kleene bounds = {%d,%d}, kleene=%v", k.MinReps, k.MaxReps, k.Kleene)
	}
	q = MustParse(`PATTERN SEQ(A a, A+ b[]{4,}, B c) WHERE a.ID=b[i].ID WITHIN 1ms`)
	k = q.Pattern[1]
	if k.MinReps != 4 || k.MaxReps != 0 {
		t.Errorf("open bounds = {%d,%d}", k.MinReps, k.MaxReps)
	}
	q = MustParse(`PATTERN SEQ(A+ b[], B c) WHERE c.ID=b[last].ID WITHIN 1ms`)
	if q.Pattern[0].MinReps != 1 {
		t.Errorf("default min reps = %d", q.Pattern[0].MinReps)
	}
}

func TestParseNegation(t *testing.T) {
	q := Q4("8ms")
	if !q.Pattern[1].Negated || q.Pattern[1].Type != "B" {
		t.Fatalf("negated component wrong: %+v", q.Pattern[1])
	}
	if !q.HasNegation() {
		t.Error("HasNegation false")
	}
	if Q1("1ms").HasNegation() {
		t.Error("Q1 should be monotonic")
	}
}

func TestParseMembershipAndUnicode(t *testing.T) {
	// The paper writes b.end∈{7,8,9}; both unicode and ASCII forms parse.
	for _, src := range []string{
		`PATTERN SEQ(A a, B b) WHERE b.end IN (7, 8, 9) WITHIN 1h`,
		`PATTERN SEQ(A a, B b) WHERE b.end ∈ {7,8,9} WITHIN 1h`,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		m, ok := q.Where[0].Expr.(*Member)
		if !ok || len(m.Values) != 3 {
			t.Fatalf("membership not parsed: %v", q.Where[0])
		}
	}
}

func TestParseUnicodeComparisons(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, B b) WHERE a.x ≥ b.v AND a.y ≤ b.v AND a.z ≠ b.v WITHIN 1ms`)
	ops := []CmpOp{CmpGe, CmpLe, CmpNe}
	for i, p := range q.Where {
		c := p.Expr.(*Compare)
		if c.Op != ops[i] {
			t.Errorf("predicate %d op = %v, want %v", i, c.Op, ops[i])
		}
	}
}

func TestParseWindows(t *testing.T) {
	cases := []struct {
		src  string
		want Window
	}{
		{`WITHIN 8ms`, Window{Duration: 8 * event.Millisecond}},
		{`WITHIN 100us`, Window{Duration: 100 * event.Microsecond}},
		{`WITHIN 1h`, Window{Duration: 3600 * event.Second}},
		{`WITHIN 2 min`, Window{Duration: 120 * event.Second}},
		{`WITHIN 1.5s`, Window{Duration: event.Time(1.5 * float64(event.Second))}},
		{`WITHIN 1000 EVENTS`, Window{Count: 1000}},
	}
	for _, c := range cases {
		q, err := Parse(`PATTERN SEQ(A a, B b) WHERE a.ID=b.ID ` + c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if q.Window != c.want {
			t.Errorf("%s: window = %+v, want %+v", c.src, q.Window, c.want)
		}
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, B b) WHERE a.x + b.y * 2 = 10 WITHIN 1ms`)
	c := q.Where[0].Expr.(*Compare)
	// a.x + (b.y * 2)
	add, ok := c.L.(*Binary)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top op = %v", c.L)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != OpMul {
		t.Fatalf("inner op = %v", add.R)
	}
}

func TestParsePowerRightAssociative(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a) WHERE a.x ^ 2 ^ 3 = 0 WITHIN 1ms`)
	c := q.Where[0].Expr.(*Compare)
	pow := c.L.(*Binary)
	if pow.Op != OpPow {
		t.Fatal("top must be ^")
	}
	if inner, ok := pow.R.(*Binary); !ok || inner.Op != OpPow {
		t.Fatal("^ must be right-associative")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SEQ(A a) WITHIN 1ms`,                   // missing PATTERN
		`PATTERN SEQ() WITHIN 1ms`,              // empty pattern
		`PATTERN SEQ(A a, B b) WHERE a.ID=b.ID`, // missing WITHIN
		`PATTERN SEQ(A a, B b) WHERE a.ID=b.ID WITHIN 1parsec`,        // bad unit
		`PATTERN SEQ(A a, B b) WHERE a.ID=b.ID WITHIN 0ms`,            // zero window
		`PATTERN SEQ(A a, A a) WHERE a.ID=a.ID WITHIN 1ms`,            // duplicate var
		`PATTERN SEQ(NOT A a, B b) WHERE a.ID=b.ID WITHIN 1ms`,        // leading NOT
		`PATTERN SEQ(A a, NOT B b) WHERE a.ID=b.ID WITHIN 1ms`,        // trailing NOT
		`PATTERN SEQ(NOT A+ a[], B b) WHERE b.ID=a[i].ID WITHIN 1ms`,  // NOT Kleene
		`PATTERN SEQ(A a[], B b) WHERE a.ID=b.ID WITHIN 1ms`,          // [] without +
		`PATTERN SEQ(A+ a, B b) WHERE b.ID=a[i].ID WITHIN 1ms`,        // + without []
		`PATTERN SEQ(A+ a[]{0,3}, B b) WHERE b.ID=a[i].ID WITHIN 1ms`, // min 0
		`PATTERN SEQ(A+ a[]{5,3}, B b) WHERE b.ID=a[i].ID WITHIN 1ms`, // max < min
		`PATTERN SEQ(A a, B b) WHERE a.ID = c.ID WITHIN 1ms`,          // unknown var
		`PATTERN SEQ(A a, B b) WHERE a.ID WITHIN 1ms`,                 // no comparison
		`PATTERN SEQ(A a, B b) WHERE 3 = 4 WITHIN 1ms`,                // no var refs
		`PATTERN SEQ(A a, B b) WHERE a.ID=b.ID WITHIN 1ms extra`,      // trailing
		`PATTERN SEQ(A+ a[], B b) WHERE a.V = b.V WITHIN 1ms`,         // unindexed Kleene
		`PATTERN SEQ(A a, B b) WHERE a[i].V = b.V WITHIN 1ms`,         // indexed non-Kleene
		`PATTERN SEQ(A+ a[], B b) WHERE a[].V = b.V WITHIN 1ms`,       // [] outside aggregate
		`PATTERN SEQ(A+ a[], B b) WHERE a[i+2].V = b.V WITHIN 1ms`,    // bad index
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsePaperQueries(t *testing.T) {
	qs := []*Query{
		Q1("8ms"), Q2("1ms", 1, 0), Q2("1ms", 2, 4), Q3("8ms"), Q4("8ms"),
		HotPaths("1h", 4, 0), ClusterTasks("1h"),
	}
	for _, q := range qs {
		if q == nil {
			t.Fatal("nil query")
		}
		if len(q.Where) == 0 {
			t.Errorf("%s: no predicates", q)
		}
	}
	if got := Q2("1ms", 1, 0).KleeneCount(); got != 1 {
		t.Errorf("Q2 KleeneCount = %d", got)
	}
	if ClusterTasks("1h").Window.Duration != 3600*event.Second {
		t.Error("cluster window wrong")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, A+ b[]{2,5}, NOT B c, C d) WHERE a.ID = b[i].ID AND a.ID = c.ID AND a.V + 1 = d.V WITHIN 8ms`)
	s := q.String()
	for _, frag := range []string{"PATTERN", "SEQ", "WHERE", "WITHIN"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %s: %q", frag, s)
		}
	}
	// Raw is preserved, so re-parsing the string must succeed.
	if _, err := Parse(s); err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
}

func TestPredicateAttrs(t *testing.T) {
	q := Q1("8ms")
	attrs := q.PredicateAttrs()
	if got := attrs["a"]; len(got) != 2 || got[0] != "ID" || got[1] != "V" {
		t.Errorf("attrs[a] = %v", got)
	}
	if got := attrs["c"]; len(got) != 2 {
		t.Errorf("attrs[c] = %v", got)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Parse(`PATTERN SEQ(A a) WHERE a.x = 'unterminated WITHIN 1ms`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Parse("PATTERN SEQ(A a) WHERE a.x = ? WITHIN 1ms"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestLineComments(t *testing.T) {
	q := MustParse(`
		PATTERN SEQ(A a, B b) -- the pattern
		WHERE a.ID = b.ID     -- correlation
		WITHIN 1ms`)
	if len(q.Pattern) != 2 {
		t.Error("comments broke parsing")
	}
}
