package query

import (
	"strings"
	"testing"

	"cepshed/internal/event"
)

func TestIndexKindStrings(t *testing.T) {
	cases := map[IndexKind]string{
		IdxNone:    "",
		IdxCurrent: "[i+1]",
		IdxPrev:    "[i]",
		IdxFirst:   "[1]",
		IdxLast:    "[last]",
		IdxAll:     "[]",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("IndexKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if IndexKind(99).String() != "[?]" {
		t.Error("unknown index kind should render as [?]")
	}
}

func TestExprStrings(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, A+ b[], B c)
		WHERE SQRT(a.x^2) + AVG(b[].V) - 3 * a.y / 2 >= 1
		AND c.end IN (7, 'x')
		AND b[last].V != b[1].V
		WITHIN 1ms`)
	joined := ""
	for _, p := range q.Where {
		joined += p.String() + " AND "
	}
	for _, frag := range []string{
		"SQRT((a.x^2))", "AVG(b[].V)", ">= 1",
		`c.end IN (7, "x")`, "b[last].V != b[1].V",
	} {
		if !strings.Contains(joined, frag) {
			t.Errorf("predicate string missing %q in %q", frag, joined)
		}
	}
}

func TestFieldRefComponentAccessor(t *testing.T) {
	q := Q1("8ms")
	r := q.Where[0].Refs[0]
	if r.Component() == nil || r.Component().Var != r.Var {
		t.Error("FieldRef.Component broken")
	}
}

func TestWindowEventAlias(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 1 EVENT`)
	if q.Window.Count != 1 {
		t.Errorf("singular EVENT unit: %+v", q.Window)
	}
	q = MustParse(`PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 3 sec`)
	if q.Window.Duration != 3*event.Second {
		t.Errorf("sec unit: %+v", q.Window)
	}
	q = MustParse(`PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 10ns`)
	if q.Window.Duration != 10 {
		t.Errorf("ns unit: %+v", q.Window)
	}
}

func TestNegativeLiteralsInSetsAndComparisons(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A a) WHERE a.V IN (-1, -2.5, 3) WITHIN 1ms`)
	m := q.Where[0].Expr.(*Member)
	if m.Values[0].AsInt() != -1 || m.Values[1].AsFloat() != -2.5 {
		t.Errorf("negative set literals: %v", m.Values)
	}
	if _, err := Parse(`PATTERN SEQ(A a) WHERE a.V IN (-'x') WITHIN 1ms`); err == nil {
		t.Error("negated string literal should fail")
	}
}

func TestParseCallErrors(t *testing.T) {
	bad := []string{
		`PATTERN SEQ(A a) WHERE SQRT(a.x, a.y) = 1 WITHIN 1ms`, // arity
		`PATTERN SEQ(A a) WHERE ABS() = 1 WITHIN 1ms`,          // empty args
		`PATTERN SEQ(A a) WHERE AVG(a.x = 1 WITHIN 1ms`,        // unterminated
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestEvalCompareOps(t *testing.T) {
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"V": event.Int(5)}),
	}}
	cases := []struct {
		src  string
		want bool
	}{
		{`a.V = 5`, true}, {`a.V != 5`, false},
		{`a.V < 6`, true}, {`a.V <= 5`, true},
		{`a.V > 4`, true}, {`a.V >= 6`, false},
	}
	for _, c := range cases {
		q := MustParse(`PATTERN SEQ(A a) WHERE ` + c.src + ` WITHIN 1ms`)
		got, err := EvalPredicate(q.Where[0], b)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalMixedIntFloatArithmetic(t *testing.T) {
	b := &fakeBinding{singles: map[int]*event.Event{
		0: ev("A", map[string]event.Value{"i": event.Int(7), "f": event.Float(0.5)}),
	}}
	q := MustParse(`PATTERN SEQ(A a) WHERE a.i * a.f = 3.5 AND a.i - 2 = 5 AND a.i + a.f > 7 WITHIN 1ms`)
	for _, p := range q.Where {
		if ok, err := EvalPredicate(p, b); err != nil || !ok {
			t.Errorf("%s: ok=%v err=%v", p, ok, err)
		}
	}
}

func TestEvalAggregateErrors(t *testing.T) {
	// Aggregate over a string attribute fails.
	q := MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE AVG(b[].S) > 1 WITHIN 1ms`)
	b := &fakeBinding{
		singles: map[int]*event.Event{0: ev("A", nil)},
		kleenes: map[int][]*event.Event{1: {ev("A", map[string]event.Value{"S": event.Str("x")})}},
	}
	if _, err := EvalPredicate(q.Where[0], b); err == nil {
		t.Error("aggregate over strings should error")
	}
	// MIN over an empty expansion fails (no repetitions bound).
	q2 := MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE MIN(b[].V) > 1 WITHIN 1ms`)
	b2 := &fakeBinding{
		singles: map[int]*event.Event{0: ev("A", nil)},
		kleenes: map[int][]*event.Event{1: nil},
	}
	if _, err := EvalPredicate(q2.Where[0], b2); err == nil {
		t.Error("aggregate over empty set should error")
	}
	// COUNT over an empty expansion is 0, not an error.
	q3 := MustParse(`PATTERN SEQ(A a, A+ b[], B c) WHERE COUNT(b[].V) = 0 WITHIN 1ms`)
	if ok, err := EvalPredicate(q3.Where[0], b2); err != nil || !ok {
		t.Errorf("COUNT over empty: ok=%v err=%v", ok, err)
	}
}

func TestEvalFirstIndexOnEmptyKleene(t *testing.T) {
	q := MustParse(`PATTERN SEQ(A+ b[], B c) WHERE c.V = b[1].V WITHIN 1ms`)
	b := &fakeBinding{
		singles: map[int]*event.Event{1: ev("B", map[string]event.Value{"V": event.Int(1)})},
		kleenes: map[int][]*event.Event{0: nil},
	}
	if _, err := EvalPredicate(q.Where[0], b); err == nil {
		t.Error("b[1] with no repetitions should error")
	}
}

func TestQueryStringSynthesized(t *testing.T) {
	// A query built without Raw renders from the AST.
	q := Q1("8ms")
	q.Raw = ""
	s := q.String()
	if !strings.Contains(s, "PATTERN SEQ(A a, B b, C c)") {
		t.Errorf("synthesized string: %q", s)
	}
	if !strings.Contains(s, "WITHIN 8ms") {
		t.Errorf("window missing: %q", s)
	}
	// Count window rendering.
	q2 := MustParse(`PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 100 EVENTS`)
	q2.Raw = ""
	if !strings.Contains(q2.String(), "WITHIN 100 EVENTS") {
		t.Errorf("count window: %q", q2.String())
	}
	// Kleene bounds rendering.
	q3 := MustParse(`PATTERN SEQ(A+ b[]{2,5}, B c) WHERE c.ID = b[last].ID WITHIN 1ms`)
	q3.Raw = ""
	if !strings.Contains(q3.String(), "b[]{2,5}") {
		t.Errorf("kleene bounds: %q", q3.String())
	}
}
