package query

import "testing"

// FuzzParse asserts the parser never panics and that every accepted
// query re-parses from its String rendering (round-trip stability).
// Run with `go test -fuzz FuzzParse ./internal/query` for exploration;
// the seed corpus runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 8ms`,
		`PATTERN SEQ(A+ a[]{2,5}, B b) WHERE b.ID = a[last].ID WITHIN 1000 EVENTS`,
		`PATTERN SEQ(A a, NOT B b, C c) WHERE a.ID = b.ID AND a.ID = c.ID WITHIN 1h`,
		`PATTERN SEQ(A a) WHERE SQRT(a.x^2 + a.y^2) >= -1.5 WITHIN 1ms`,
		`PATTERN SEQ(A a) WHERE a.end ∈ {7,8,9} WITHIN 1ms`,
		`PATTERN SEQ(A a) WHERE a.u IN ('x', 'y') WITHIN 1ms`,
		`PATTERN SEQ(`,
		`PATTERN SEQ(A a) WHERE WITHIN`,
		"PATTERN SEQ(A a) WHERE a.x = 'unterminated",
		`pattern seq(a a, b+ b[], c c) where a.id = b[i].id within 2 min`,
		`PATTERN SEQ(A a) WHERE AVG(a.x, a.y) > COUNT(a.z) WITHIN 1ms -- tail`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted queries must render and re-parse.
		rendered := q.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("round-trip failed for %q -> %q: %v", src, rendered, err)
		}
	})
}
