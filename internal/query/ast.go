// Package query implements the SASE-style CEP query language used by the
// paper: PATTERN SEQ(...) WHERE ... WITHIN ..., with Kleene closure,
// negation, correlation predicates, aggregates, and time- or count-based
// windows. It provides the lexer, parser, typed AST, static analysis
// (predicate anchoring), and predicate evaluation.
package query

import (
	"fmt"
	"strings"

	"cepshed/internal/event"
)

// Query is a parsed and analyzed CEP query.
type Query struct {
	// Pattern is the ordered list of sequence components.
	Pattern []Component
	// Where is the conjunction of atomic predicates.
	Where []*Predicate
	// Window bounds matches in time or event count.
	Window Window
	// Raw is the original query text.
	Raw string
}

// Window is a match validity bound: either a virtual-time duration or a
// count of stream events (the paper's Fig 12 uses 1K-8K event windows).
type Window struct {
	Duration event.Time // > 0 for time windows
	Count    int        // > 0 for count windows
}

// Component is one element of the SEQ pattern.
type Component struct {
	// Type is the required event type.
	Type string
	// Var is the variable name binding the event(s).
	Var string
	// Kleene marks a Kleene-closure component (Type+ var[]).
	Kleene bool
	// Negated marks a NOT component: no matching event may occur between
	// the neighbouring positive components.
	Negated bool
	// MinReps/MaxReps bound Kleene repetitions; MaxReps 0 means unbounded.
	MinReps int
	MaxReps int
	// Pos is the component's index in the pattern.
	Pos int
}

// IndexKind says how a Kleene variable is indexed in a field reference.
type IndexKind uint8

const (
	// IdxNone is a plain reference to a non-Kleene variable.
	IdxNone IndexKind = iota
	// IdxCurrent is k[i] (or k[i+1] when paired): the repetition being
	// bound right now during an incremental check.
	IdxCurrent
	// IdxPrev is k[i] when the same predicate also uses k[i+1]: the
	// repetition bound immediately before the current one.
	IdxPrev
	// IdxFirst is k[1]: the first repetition.
	IdxFirst
	// IdxLast is k[last]: the most recent repetition.
	IdxLast
	// IdxAll is k[]: all repetitions (only valid inside aggregates).
	IdxAll
)

func (k IndexKind) String() string {
	switch k {
	case IdxNone:
		return ""
	case IdxCurrent:
		return "[i+1]"
	case IdxPrev:
		return "[i]"
	case IdxFirst:
		return "[1]"
	case IdxLast:
		return "[last]"
	case IdxAll:
		return "[]"
	default:
		return "[?]"
	}
}

// Anchor describes when a predicate becomes checkable.
type Anchor uint8

const (
	// AnchorBind predicates run when their anchor component binds an event.
	AnchorBind Anchor = iota
	// AnchorIncremental predicates run on every Kleene take of the anchor.
	AnchorIncremental
	// AnchorComplete predicates run when a full match is about to be
	// emitted (e.g. aggregate over a trailing Kleene).
	AnchorComplete
	// AnchorNegation predicates guard a negated component; they run
	// against candidate events of the negated type.
	AnchorNegation
)

// Predicate is one atomic boolean condition of the WHERE clause.
type Predicate struct {
	// Expr is the boolean expression (comparison or membership).
	Expr Expr
	// Refs are the field references appearing in Expr.
	Refs []*FieldRef
	// AnchorPos is the pattern position at which the predicate runs.
	AnchorPos int
	// Kind classifies when the predicate is evaluated.
	Kind Anchor
}

// String renders the predicate.
func (p *Predicate) String() string { return p.Expr.String() }

// Expr is a node of a predicate expression tree.
type Expr interface {
	String() string
	// walk visits the expression and its children.
	walk(func(Expr))
}

// Literal is a numeric or string constant.
type Literal struct{ Val event.Value }

func (l *Literal) String() string    { return l.Val.String() }
func (l *Literal) walk(f func(Expr)) { f(l) }

// FieldRef references an attribute of a bound pattern variable.
type FieldRef struct {
	Var   string
	Index IndexKind
	Attr  string
	// comp is resolved during analysis.
	comp *Component
}

func (r *FieldRef) String() string    { return r.Var + r.Index.String() + "." + r.Attr }
func (r *FieldRef) walk(f func(Expr)) { f(r) }

// Component returns the pattern component the reference resolves to.
func (r *FieldRef) Component() *Component { return r.comp }

// BinaryOp enumerates arithmetic operators.
type BinaryOp uint8

const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpPow
)

func (o BinaryOp) String() string { return [...]string{"+", "-", "*", "/", "^"}[o] }

// Binary is an arithmetic expression.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (b *Binary) String() string {
	return "(" + b.L.String() + b.Op.String() + b.R.String() + ")"
}
func (b *Binary) walk(f func(Expr)) { f(b); b.L.walk(f); b.R.walk(f) }

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string { return [...]string{"=", "!=", "<", "<=", ">", ">="}[o] }

// Compare is a boolean comparison.
type Compare struct {
	Op   CmpOp
	L, R Expr
}

func (c *Compare) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}
func (c *Compare) walk(f func(Expr)) { f(c); c.L.walk(f); c.R.walk(f) }

// Member is a set-membership test (x IN (v1, v2, ...)).
type Member struct {
	X      Expr
	Values []event.Value
}

func (m *Member) String() string {
	parts := make([]string, len(m.Values))
	for i, v := range m.Values {
		parts[i] = v.String()
	}
	return m.X.String() + " IN (" + strings.Join(parts, ", ") + ")"
}
func (m *Member) walk(f func(Expr)) { f(m); m.X.walk(f) }

// Func enumerates the built-in functions.
type Func uint8

const (
	FnSqrt Func = iota
	FnAbs
	FnAvg
	FnSum
	FnMin
	FnMax
	FnCount
)

func (f Func) String() string {
	return [...]string{"SQRT", "ABS", "AVG", "SUM", "MIN", "MAX", "COUNT"}[f]
}

// Call is a function application. Aggregate functions (AVG, SUM, MIN, MAX,
// COUNT) accept multiple arguments and expand k[] references over all
// Kleene repetitions; SQRT and ABS take a single argument.
type Call struct {
	Fn   Func
	Args []Expr
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn.String() + "(" + strings.Join(parts, ", ") + ")"
}
func (c *Call) walk(f func(Expr)) {
	f(c)
	for _, a := range c.Args {
		a.walk(f)
	}
}

// Component lookup by variable name.
func (q *Query) component(name string) *Component {
	for i := range q.Pattern {
		if q.Pattern[i].Var == name {
			return &q.Pattern[i]
		}
	}
	return nil
}

// KleeneCount returns the number of Kleene components.
func (q *Query) KleeneCount() int {
	n := 0
	for _, c := range q.Pattern {
		if c.Kleene {
			n++
		}
	}
	return n
}

// HasNegation reports whether the pattern contains a negated component.
// Queries with negation are non-monotonic (§III-A): shedding may create
// false positives.
func (q *Query) HasNegation() bool {
	for _, c := range q.Pattern {
		if c.Negated {
			return true
		}
	}
	return false
}

// PredicateAttrs returns, per variable name, the set of attributes that
// appear in query predicates. The cost-model classifiers use exactly these
// attributes as predictor variables (§V-B).
func (q *Query) PredicateAttrs() map[string][]string {
	seen := map[string]map[string]bool{}
	for _, p := range q.Where {
		for _, r := range p.Refs {
			if seen[r.Var] == nil {
				seen[r.Var] = map[string]bool{}
			}
			seen[r.Var][r.Attr] = true
		}
	}
	out := map[string][]string{}
	for v, attrs := range seen {
		list := make([]string, 0, len(attrs))
		for a := range attrs {
			list = append(list, a)
		}
		sortStrings(list)
		out[v] = list
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (q *Query) String() string {
	if q.Raw != "" {
		return q.Raw
	}
	var b strings.Builder
	b.WriteString("PATTERN SEQ(")
	for i, c := range q.Pattern {
		if i > 0 {
			b.WriteString(", ")
		}
		if c.Negated {
			b.WriteString("NOT ")
		}
		b.WriteString(c.Type)
		if c.Kleene {
			b.WriteByte('+')
		}
		b.WriteByte(' ')
		b.WriteString(c.Var)
		if c.Kleene {
			b.WriteString("[]")
			if c.MinReps > 1 || c.MaxReps > 0 {
				fmt.Fprintf(&b, "{%d,", c.MinReps)
				if c.MaxReps > 0 {
					fmt.Fprintf(&b, "%d", c.MaxReps)
				}
				b.WriteByte('}')
			}
		}
	}
	b.WriteByte(')')
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if q.Window.Count > 0 {
		fmt.Fprintf(&b, " WITHIN %d EVENTS", q.Window.Count)
	} else {
		fmt.Fprintf(&b, " WITHIN %s", q.Window.Duration)
	}
	return b.String()
}
