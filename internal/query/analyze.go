package query

import "fmt"

// analyze resolves field references against the pattern, promotes Kleene
// index kinds, validates indexing, and assigns each predicate its anchor
// (the pattern position and moment at which it becomes checkable).
func analyze(q *Query) error {
	if len(q.Pattern) == 0 {
		return fmt.Errorf("query: empty pattern")
	}
	seen := map[string]bool{}
	positives := 0
	for i := range q.Pattern {
		c := &q.Pattern[i]
		if seen[c.Var] {
			return fmt.Errorf("query: duplicate variable %s", c.Var)
		}
		seen[c.Var] = true
		if !c.Negated {
			positives++
		}
	}
	if positives == 0 {
		return fmt.Errorf("query: pattern needs at least one positive component")
	}
	if q.Pattern[0].Negated {
		return fmt.Errorf("query: pattern cannot start with a negated component")
	}
	if q.Pattern[len(q.Pattern)-1].Negated {
		return fmt.Errorf("query: pattern cannot end with a negated component")
	}
	if q.Window.Duration <= 0 && q.Window.Count <= 0 {
		return fmt.Errorf("query: window must be positive")
	}
	for _, p := range q.Where {
		if err := analyzePredicate(q, p); err != nil {
			return err
		}
	}
	return nil
}

func analyzePredicate(q *Query, p *Predicate) error {
	// Collect and resolve references.
	var refs []*FieldRef
	var aggDepth int
	var badAgg error
	var walk func(e Expr, inAgg bool)
	walk = func(e Expr, inAgg bool) {
		switch n := e.(type) {
		case *FieldRef:
			refs = append(refs, n)
			if n.Index == IdxAll && !inAgg {
				badAgg = fmt.Errorf("query: %s[] reference only valid inside aggregates", n.Var)
			}
		case *Binary:
			walk(n.L, inAgg)
			walk(n.R, inAgg)
		case *Compare:
			walk(n.L, inAgg)
			walk(n.R, inAgg)
		case *Member:
			walk(n.X, inAgg)
		case *Call:
			agg := n.Fn == FnAvg || n.Fn == FnSum || n.Fn == FnMin || n.Fn == FnMax || n.Fn == FnCount
			for _, a := range n.Args {
				walk(a, inAgg || agg)
			}
			if agg {
				aggDepth++
			}
		}
	}
	walk(p.Expr, false)
	if badAgg != nil {
		return badAgg
	}
	if len(refs) == 0 {
		return fmt.Errorf("query: predicate %s references no pattern variable", p)
	}
	p.Refs = refs

	hasCurrent := map[string]bool{}
	for _, r := range refs {
		c := q.component(r.Var)
		if c == nil {
			return fmt.Errorf("query: unknown variable %s in %s", r.Var, p)
		}
		r.comp = c
		if c.Kleene && r.Index == IdxNone {
			return fmt.Errorf("query: Kleene variable %s must be indexed (e.g. %s[i], %s[last])", r.Var, r.Var, r.Var)
		}
		if !c.Kleene && r.Index != IdxNone {
			return fmt.Errorf("query: variable %s is not Kleene and cannot be indexed", r.Var)
		}
		if c.Negated && r.Index != IdxNone {
			return fmt.Errorf("query: negated variable %s cannot be indexed", r.Var)
		}
		if r.Index == IdxCurrent {
			hasCurrent[r.Var] = true
		}
	}
	// Promote [i] to the current repetition unless the predicate pairs it
	// with [i+1] for the same variable.
	for _, r := range refs {
		if r.Index == IdxPrev && !hasCurrent[r.Var] {
			r.Index = IdxCurrent
		}
	}

	// Classify.
	negPos, incPos := -1, -1
	maxPos, maxIsKleene := -1, false
	for _, r := range refs {
		c := r.comp
		switch {
		case c.Negated:
			if negPos >= 0 && negPos != c.Pos {
				return fmt.Errorf("query: predicate %s references two negated variables", p)
			}
			negPos = c.Pos
		case r.Index == IdxCurrent || r.Index == IdxPrev:
			if incPos >= 0 && incPos != c.Pos {
				return fmt.Errorf("query: predicate %s has incremental references to two Kleene variables", p)
			}
			incPos = c.Pos
		}
		if c.Pos > maxPos {
			maxPos = c.Pos
			maxIsKleene = c.Kleene && r.Index != IdxCurrent && r.Index != IdxPrev
		} else if c.Pos == maxPos && c.Kleene && (r.Index == IdxCurrent || r.Index == IdxPrev) {
			maxIsKleene = false
		}
	}
	switch {
	case negPos >= 0:
		p.Kind = AnchorNegation
		p.AnchorPos = negPos
		for _, r := range refs {
			if !r.comp.Negated && r.comp.Pos > negPos {
				return fmt.Errorf("query: negation predicate %s cannot reference later variable %s", p, r.Var)
			}
		}
	case incPos >= 0:
		p.Kind = AnchorIncremental
		p.AnchorPos = incPos
		for _, r := range refs {
			if r.comp.Pos > incPos {
				return fmt.Errorf("query: incremental predicate %s cannot reference later variable %s", p, r.Var)
			}
		}
	case maxIsKleene:
		// Aggregates or [last]/[first] over the rightmost referenced
		// component, which is Kleene: value keeps changing while the
		// Kleene grows, so check at match completion.
		p.Kind = AnchorComplete
		p.AnchorPos = maxPos
	default:
		p.Kind = AnchorBind
		p.AnchorPos = maxPos
	}
	return nil
}

// PredicatesAt returns the predicates to check when the component at pos
// binds an event (AnchorBind), plus separately the incremental predicates
// for a Kleene component.
func (q *Query) PredicatesAt(pos int) (bind, incremental []*Predicate) {
	for _, p := range q.Where {
		if p.AnchorPos != pos {
			continue
		}
		switch p.Kind {
		case AnchorBind:
			bind = append(bind, p)
		case AnchorIncremental:
			incremental = append(incremental, p)
		}
	}
	return bind, incremental
}

// CompletionPredicates returns the predicates checked at match emission.
func (q *Query) CompletionPredicates() []*Predicate {
	var out []*Predicate
	for _, p := range q.Where {
		if p.Kind == AnchorComplete {
			out = append(out, p)
		}
	}
	return out
}

// NegationPredicates returns the predicates guarding the negated
// component at pos.
func (q *Query) NegationPredicates(pos int) []*Predicate {
	var out []*Predicate
	for _, p := range q.Where {
		if p.Kind == AnchorNegation && p.AnchorPos == pos {
			out = append(out, p)
		}
	}
	return out
}
