package query

import (
	"fmt"
	"math"

	"cepshed/internal/event"
)

// This file compiles analyzed predicates into closure chains so the engine
// hot path evaluates them without walking the AST: every type switch,
// field-reference resolution, and index-kind dispatch of eval.go is done
// once at compile time, and the per-evaluation residue is a tree of direct
// closure calls. Compiled evaluation is behaviourally identical to
// EvalPredicate — including error identity for the vacuous first-Kleene-
// repetition sentinel (IsVacuous) — which compile_test.go checks
// differentially against the interpreter.

// boolProg evaluates a compiled boolean expression. allIdx is the k[]
// expansion cursor (-1 outside aggregate expansion).
type boolProg func(b Binding, allIdx int) (bool, error)

// valProg evaluates a compiled value expression.
type valProg func(b Binding, allIdx int) (event.Value, error)

// CompiledPredicate is a predicate compiled into a closure chain.
type CompiledPredicate struct {
	// Src is the predicate this program was compiled from.
	Src *Predicate
	fn  boolProg
}

// Eval evaluates the compiled predicate under a binding. It returns
// exactly what EvalPredicate(c.Src, b) would.
func (c *CompiledPredicate) Eval(b Binding) (bool, error) {
	return c.fn(b, -1)
}

// CompilePredicate compiles one predicate.
func CompilePredicate(p *Predicate) CompiledPredicate {
	return CompiledPredicate{Src: p, fn: compileBool(p.Expr)}
}

// CompilePredicates compiles a conjunction, preserving order.
func CompilePredicates(ps []*Predicate) []CompiledPredicate {
	if len(ps) == 0 {
		return nil
	}
	out := make([]CompiledPredicate, len(ps))
	for i, p := range ps {
		out[i] = CompilePredicate(p)
	}
	return out
}

func compileBool(e Expr) boolProg {
	switch n := e.(type) {
	case *Compare:
		l, r := compileVal(n.L), compileVal(n.R)
		op := n.Op
		return func(b Binding, allIdx int) (bool, error) {
			lv, err := l(b, allIdx)
			if err != nil {
				return false, err
			}
			rv, err := r(b, allIdx)
			if err != nil {
				return false, err
			}
			return compare(op, lv, rv), nil
		}
	case *Member:
		x := compileVal(n.X)
		values := n.Values
		return func(b Binding, allIdx int) (bool, error) {
			xv, err := x(b, allIdx)
			if err != nil {
				return false, err
			}
			for _, v := range values {
				if xv.Equal(v) {
					return true, nil
				}
			}
			return false, nil
		}
	default:
		err := fmt.Errorf("query: expression %s is not boolean", e)
		return func(Binding, int) (bool, error) { return false, err }
	}
}

func compileVal(e Expr) valProg {
	switch n := e.(type) {
	case *Literal:
		v := n.Val
		return func(Binding, int) (event.Value, error) { return v, nil }
	case *FieldRef:
		return compileRef(n)
	case *Binary:
		l, r := compileVal(n.L), compileVal(n.R)
		op := n.Op
		return func(b Binding, allIdx int) (event.Value, error) {
			lv, err := l(b, allIdx)
			if err != nil {
				return event.Value{}, err
			}
			rv, err := r(b, allIdx)
			if err != nil {
				return event.Value{}, err
			}
			return arith(op, lv, rv)
		}
	case *Call:
		return compileCall(n)
	default:
		err := fmt.Errorf("query: cannot evaluate %s as a value", e)
		return func(Binding, int) (event.Value, error) { return event.Value{}, err }
	}
}

// compileRef resolves the component, index kind, and attribute of a field
// reference once, leaving only the per-evaluation slice/map accesses.
func compileRef(r *FieldRef) valProg {
	c := r.comp
	if c == nil {
		err := fmt.Errorf("query: unresolved reference %s", r)
		return func(Binding, int) (event.Value, error) { return event.Value{}, err }
	}
	attr := r.Attr
	errUnbound := fmt.Errorf("query: variable %s is not bound", r.Var)
	// getAttr is the shared slow-path helper; the two hottest reference
	// kinds (negated/current and non-Kleene single) inline the attribute
	// lookup to avoid an extra indirect call per evaluation.
	getAttr := func(e *event.Event) (event.Value, error) {
		if e == nil {
			return event.Value{}, errUnbound
		}
		v, ok := e.Get(attr)
		if !ok {
			return event.Value{}, fmt.Errorf("query: event %s has no attribute %s", e.Type, attr)
		}
		return v, nil
	}
	switch {
	case c.Negated:
		return func(b Binding, _ int) (event.Value, error) {
			e := b.Current()
			if e == nil {
				return event.Value{}, errUnbound
			}
			v, ok := e.Attrs[attr]
			if !ok {
				return event.Value{}, fmt.Errorf("query: event %s has no attribute %s", e.Type, attr)
			}
			return v, nil
		}
	case !c.Kleene:
		pos := c.Pos
		return func(b Binding, _ int) (event.Value, error) {
			e := b.Single(pos)
			if e == nil {
				return event.Value{}, errUnbound
			}
			v, ok := e.Attrs[attr]
			if !ok {
				return event.Value{}, fmt.Errorf("query: event %s has no attribute %s", e.Type, attr)
			}
			return v, nil
		}
	}
	pos := c.Pos
	switch r.Index {
	case IdxCurrent:
		return func(b Binding, _ int) (event.Value, error) {
			return getAttr(b.Current())
		}
	case IdxPrev:
		return func(b Binding, _ int) (event.Value, error) {
			reps := b.Kleene(pos)
			if len(reps) == 0 {
				return event.Value{}, errNoPrev
			}
			return getAttr(reps[len(reps)-1])
		}
	case IdxFirst:
		errEmpty := fmt.Errorf("query: %s has no repetitions", r.Var)
		return func(b Binding, _ int) (event.Value, error) {
			reps := b.Kleene(pos)
			if len(reps) == 0 {
				return event.Value{}, errEmpty
			}
			return getAttr(reps[0])
		}
	case IdxLast:
		errEmpty := fmt.Errorf("query: %s has no repetitions", r.Var)
		return func(b Binding, _ int) (event.Value, error) {
			reps := b.Kleene(pos)
			if len(reps) == 0 {
				return event.Value{}, errEmpty
			}
			return getAttr(reps[len(reps)-1])
		}
	case IdxAll:
		errOutside := fmt.Errorf("query: %s[] outside aggregate expansion", r.Var)
		return func(b Binding, allIdx int) (event.Value, error) {
			reps := b.Kleene(pos)
			if allIdx < 0 || allIdx >= len(reps) {
				return event.Value{}, errOutside
			}
			return getAttr(reps[allIdx])
		}
	default:
		// A bare reference to a Kleene variable resolves to no event, like
		// the interpreter's unmatched index switch.
		return func(Binding, int) (event.Value, error) { return event.Value{}, errUnbound }
	}
}

func compileCall(c *Call) valProg {
	switch c.Fn {
	case FnSqrt, FnAbs:
		arg := compileVal(c.Args[0])
		fn := c.Fn
		return func(b Binding, allIdx int) (event.Value, error) {
			v, err := arg(b, allIdx)
			if err != nil {
				return event.Value{}, err
			}
			if !v.IsNumeric() {
				return event.Value{}, fmt.Errorf("query: %s of non-numeric %s", fn, v)
			}
			if fn == FnAbs {
				return event.Float(math.Abs(v.AsFloat())), nil
			}
			f := v.AsFloat()
			if f < 0 {
				return event.Value{}, fmt.Errorf("query: SQRT of negative value %v", f)
			}
			return event.Float(math.Sqrt(f)), nil
		}
	}
	// Aggregate: precompute, per argument, whether it expands over a k[]
	// reference (and which Kleene position drives the expansion).
	type aggArg struct {
		prog   valProg
		allPos int // Kleene position of the k[] ref, or -1
	}
	args := make([]aggArg, len(c.Args))
	for i, a := range c.Args {
		args[i] = aggArg{prog: compileVal(a), allPos: -1}
		if r := findAllRef(a); r != nil {
			if r.comp == nil {
				err := fmt.Errorf("query: unresolved reference %s", r)
				return func(Binding, int) (event.Value, error) { return event.Value{}, err }
			}
			args[i].allPos = r.comp.Pos
		}
	}
	fn := c.Fn
	return func(b Binding, allIdx int) (event.Value, error) {
		var buf [8]float64
		vals := buf[:0]
		for _, a := range args {
			if a.allPos < 0 {
				v, err := a.prog(b, allIdx)
				if err != nil {
					return event.Value{}, err
				}
				if !v.IsNumeric() {
					return event.Value{}, fmt.Errorf("query: aggregate over non-numeric %s", v)
				}
				vals = append(vals, v.AsFloat())
				continue
			}
			reps := b.Kleene(a.allPos)
			for j := range reps {
				v, err := a.prog(b, j)
				if err != nil {
					return event.Value{}, err
				}
				if !v.IsNumeric() {
					return event.Value{}, fmt.Errorf("query: aggregate over non-numeric %s", v)
				}
				vals = append(vals, v.AsFloat())
			}
		}
		if fn == FnCount {
			return event.Int(int64(len(vals))), nil
		}
		if len(vals) == 0 {
			return event.Value{}, fmt.Errorf("query: %s over empty set", fn)
		}
		switch fn {
		case FnAvg:
			var s float64
			for _, v := range vals {
				s += v
			}
			return event.Float(s / float64(len(vals))), nil
		case FnSum:
			var s float64
			for _, v := range vals {
				s += v
			}
			return event.Float(s), nil
		case FnMin:
			m := vals[0]
			for _, v := range vals[1:] {
				if v < m {
					m = v
				}
			}
			return event.Float(m), nil
		case FnMax:
			m := vals[0]
			for _, v := range vals[1:] {
				if v > m {
					m = v
				}
			}
			return event.Float(m), nil
		default:
			return event.Value{}, fmt.Errorf("query: unknown function %s", fn)
		}
	}
}
