package query

import (
	"fmt"
	"math"

	"cepshed/internal/event"
)

// Binding supplies the events bound by a (partial) match for predicate
// evaluation. Positions refer to Component.Pos.
type Binding interface {
	// Single returns the event bound at a non-Kleene position (nil if the
	// position is not bound yet).
	Single(pos int) *event.Event
	// Kleene returns the repetitions bound so far at a Kleene position.
	Kleene(pos int) []*event.Event
	// Current returns the candidate event being examined right now: the
	// repetition being taken for incremental predicates, or the candidate
	// of the negated type for negation predicates.
	Current() *event.Event
}

// EvalPredicate evaluates an analyzed predicate under a binding. Missing
// attributes, unbound variables, and type errors yield an error; callers
// generally treat an error as "predicate not satisfied".
func EvalPredicate(p *Predicate, b Binding) (bool, error) {
	ev := evaluator{b: b, allIdx: -1}
	return ev.evalBool(p.Expr)
}

type evaluator struct {
	b      Binding
	allIdx int // >= 0 while expanding an IdxAll reference
}

func (ev *evaluator) evalBool(e Expr) (bool, error) {
	switch n := e.(type) {
	case *Compare:
		l, err := ev.eval(n.L)
		if err != nil {
			return false, err
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return false, err
		}
		return compare(n.Op, l, r), nil
	case *Member:
		x, err := ev.eval(n.X)
		if err != nil {
			return false, err
		}
		for _, v := range n.Values {
			if x.Equal(v) {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("query: expression %s is not boolean", e)
	}
}

func compare(op CmpOp, l, r event.Value) bool {
	switch op {
	case CmpEq:
		return l.Equal(r)
	case CmpNe:
		return !l.Equal(r)
	case CmpLt:
		return l.Compare(r) < 0
	case CmpLe:
		return l.Compare(r) <= 0
	case CmpGt:
		return l.Compare(r) > 0
	case CmpGe:
		return l.Compare(r) >= 0
	default:
		return false
	}
}

func (ev *evaluator) eval(e Expr) (event.Value, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, nil
	case *FieldRef:
		return ev.evalRef(n)
	case *Binary:
		l, err := ev.eval(n.L)
		if err != nil {
			return event.Value{}, err
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return event.Value{}, err
		}
		return arith(n.Op, l, r)
	case *Call:
		return ev.evalCall(n)
	default:
		return event.Value{}, fmt.Errorf("query: cannot evaluate %s as a value", e)
	}
}

func arith(op BinaryOp, l, r event.Value) (event.Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return event.Value{}, fmt.Errorf("query: arithmetic on non-numeric values %s, %s", l, r)
	}
	// Integer arithmetic stays integral except for division and power.
	if l.Kind == event.KindInt && r.Kind == event.KindInt {
		switch op {
		case OpAdd:
			return event.Int(l.I + r.I), nil
		case OpSub:
			return event.Int(l.I - r.I), nil
		case OpMul:
			return event.Int(l.I * r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return event.Float(lf + rf), nil
	case OpSub:
		return event.Float(lf - rf), nil
	case OpMul:
		return event.Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return event.Value{}, fmt.Errorf("query: division by zero")
		}
		return event.Float(lf / rf), nil
	case OpPow:
		return event.Float(math.Pow(lf, rf)), nil
	default:
		return event.Value{}, fmt.Errorf("query: unknown operator %s", op)
	}
}

func (ev *evaluator) evalRef(r *FieldRef) (event.Value, error) {
	c := r.comp
	if c == nil {
		return event.Value{}, fmt.Errorf("query: unresolved reference %s", r)
	}
	var e *event.Event
	switch {
	case c.Negated:
		e = ev.b.Current()
	case !c.Kleene:
		e = ev.b.Single(c.Pos)
	default:
		reps := ev.b.Kleene(c.Pos)
		switch r.Index {
		case IdxCurrent:
			e = ev.b.Current()
		case IdxPrev:
			if len(reps) == 0 {
				return event.Value{}, errNoPrev
			}
			e = reps[len(reps)-1]
		case IdxFirst:
			if len(reps) == 0 {
				return event.Value{}, fmt.Errorf("query: %s has no repetitions", r.Var)
			}
			e = reps[0]
		case IdxLast:
			if len(reps) == 0 {
				return event.Value{}, fmt.Errorf("query: %s has no repetitions", r.Var)
			}
			e = reps[len(reps)-1]
		case IdxAll:
			if ev.allIdx < 0 || ev.allIdx >= len(reps) {
				return event.Value{}, fmt.Errorf("query: %s[] outside aggregate expansion", r.Var)
			}
			e = reps[ev.allIdx]
		}
	}
	if e == nil {
		return event.Value{}, fmt.Errorf("query: variable %s is not bound", r.Var)
	}
	v, ok := e.Get(r.Attr)
	if !ok {
		return event.Value{}, fmt.Errorf("query: event %s has no attribute %s", e.Type, r.Attr)
	}
	return v, nil
}

// errNoPrev marks the vacuous first Kleene repetition: an incremental
// predicate pairing k[i+1] with k[i] is trivially satisfied when no
// previous repetition exists. The engine checks for it via IsVacuous.
var errNoPrev = fmt.Errorf("query: no previous Kleene repetition")

// IsVacuous reports whether an evaluation error means the predicate was
// not applicable (first Kleene repetition) rather than failed.
func IsVacuous(err error) bool { return err == errNoPrev }

func (ev *evaluator) evalCall(c *Call) (event.Value, error) {
	switch c.Fn {
	case FnSqrt, FnAbs:
		v, err := ev.eval(c.Args[0])
		if err != nil {
			return event.Value{}, err
		}
		if !v.IsNumeric() {
			return event.Value{}, fmt.Errorf("query: %s of non-numeric %s", c.Fn, v)
		}
		if c.Fn == FnAbs {
			return event.Float(math.Abs(v.AsFloat())), nil
		}
		f := v.AsFloat()
		if f < 0 {
			return event.Value{}, fmt.Errorf("query: SQRT of negative value %v", f)
		}
		return event.Float(math.Sqrt(f)), nil
	}
	// Aggregates: expand each argument; arguments containing k[] refs
	// contribute one value per repetition.
	var vals []float64
	for _, a := range c.Args {
		allVar := findAllRef(a)
		if allVar == nil {
			v, err := ev.eval(a)
			if err != nil {
				return event.Value{}, err
			}
			if !v.IsNumeric() {
				return event.Value{}, fmt.Errorf("query: aggregate over non-numeric %s", v)
			}
			vals = append(vals, v.AsFloat())
			continue
		}
		reps := ev.b.Kleene(allVar.comp.Pos)
		for j := range reps {
			sub := evaluator{b: ev.b, allIdx: j}
			v, err := sub.eval(a)
			if err != nil {
				return event.Value{}, err
			}
			if !v.IsNumeric() {
				return event.Value{}, fmt.Errorf("query: aggregate over non-numeric %s", v)
			}
			vals = append(vals, v.AsFloat())
		}
	}
	if c.Fn == FnCount {
		return event.Int(int64(len(vals))), nil
	}
	if len(vals) == 0 {
		return event.Value{}, fmt.Errorf("query: %s over empty set", c.Fn)
	}
	switch c.Fn {
	case FnAvg:
		var s float64
		for _, v := range vals {
			s += v
		}
		return event.Float(s / float64(len(vals))), nil
	case FnSum:
		var s float64
		for _, v := range vals {
			s += v
		}
		return event.Float(s), nil
	case FnMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return event.Float(m), nil
	case FnMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return event.Float(m), nil
	default:
		return event.Value{}, fmt.Errorf("query: unknown function %s", c.Fn)
	}
}

// findAllRef returns the first k[] reference inside e, or nil.
func findAllRef(e Expr) *FieldRef {
	var found *FieldRef
	e.walk(func(x Expr) {
		if r, ok := x.(*FieldRef); ok && r.Index == IdxAll && found == nil {
			found = r
		}
	})
	return found
}
