package query

import (
	"math/rand"
	"testing"

	"cepshed/internal/event"
)

// testBinding is a direct position-indexed binding for compiler tests.
type testBinding struct {
	singles map[int]*event.Event
	kleene  map[int][]*event.Event
	current *event.Event
}

func (b testBinding) Single(pos int) *event.Event   { return b.singles[pos] }
func (b testBinding) Kleene(pos int) []*event.Event { return b.kleene[pos] }
func (b testBinding) Current() *event.Event         { return b.current }

// randomEvent builds an event whose attributes are randomly present, so
// missing-attribute and unbound-variable error paths are exercised too.
func randomEvent(rng *rand.Rand, typ string, attrs []string) *event.Event {
	m := map[string]event.Value{}
	for _, a := range attrs {
		switch rng.Intn(4) {
		case 0: // absent
		case 1:
			m[a] = event.Int(int64(rng.Intn(10) + 1))
		case 2:
			m[a] = event.Float(rng.Float64()*10 + 0.5)
		case 3:
			m[a] = event.Str("s" + string(rune('a'+rng.Intn(3))))
		}
	}
	return event.New(typ, event.Time(rng.Intn(1000)), m)
}

// TestCompiledMatchesInterpreter checks, for every predicate of every
// paper query (plus grammar-corner queries), that the compiled program
// and the AST interpreter agree on result, error presence, error text,
// and vacuousness across randomized bindings.
func TestCompiledMatchesInterpreter(t *testing.T) {
	queries := []*Query{
		Q1("8ms"),
		Q2("8ms", 1, 3),
		Q3("8ms"),
		Q4("8ms"),
		HotPaths("5 min", 2, 5),
		ClusterTasks("1h"),
		MustParse(`PATTERN SEQ(A a, A+ b[], B c)
			WHERE a.V IN (1, 2, 3) AND COUNT(b[].V) >= 1 AND SUM(b[].V, a.V) > 4
			AND MIN(b[].V) < MAX(b[].V) AND ABS(a.V - c.V) <= 5 AND SQRT(a.V) < 4
			WITHIN 1ms`),
		MustParse(`PATTERN SEQ(A a, A+ b[]) WHERE b[i+1].V > b[i].V AND b[1].V < b[last].V WITHIN 1ms`),
	}
	attrs := []string{"ID", "V", "x", "y", "v", "bike", "start", "end", "task", "machine"}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(qi)*101 + 7))
		for trial := 0; trial < 400; trial++ {
			b := testBinding{singles: map[int]*event.Event{}, kleene: map[int][]*event.Event{}}
			for _, c := range q.Pattern {
				if rng.Intn(5) == 0 {
					continue // leave unbound sometimes
				}
				if c.Kleene {
					n := rng.Intn(4)
					reps := make([]*event.Event, n)
					for i := range reps {
						reps[i] = randomEvent(rng, c.Type, attrs)
					}
					b.kleene[c.Pos] = reps
				} else {
					b.singles[c.Pos] = randomEvent(rng, c.Type, attrs)
				}
			}
			if rng.Intn(4) != 0 {
				b.current = randomEvent(rng, "X", attrs)
			}
			for pi, p := range q.Where {
				cp := CompilePredicate(p)
				wantOK, wantErr := EvalPredicate(p, b)
				gotOK, gotErr := cp.Eval(b)
				if wantOK != gotOK {
					t.Fatalf("q%d trial %d pred %d (%s): interpreted %v, compiled %v", qi, trial, pi, p, wantOK, gotOK)
				}
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("q%d trial %d pred %d (%s): err %v vs %v", qi, trial, pi, p, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("q%d trial %d pred %d: error text %q vs %q", qi, trial, pi, wantErr, gotErr)
					}
					if IsVacuous(wantErr) != IsVacuous(gotErr) {
						t.Fatalf("q%d trial %d pred %d: vacuous divergence", qi, trial, pi)
					}
				}
			}
		}
	}
}

// TestCompiledPredicateSrc checks the compiled form keeps its source.
func TestCompiledPredicateSrc(t *testing.T) {
	q := Q1("8ms")
	for _, p := range q.Where {
		if cp := CompilePredicate(p); cp.Src != p {
			t.Fatal("Src not preserved")
		}
	}
	if got := CompilePredicates(nil); got != nil {
		t.Fatal("empty conjunction should compile to nil")
	}
}
