package metrics

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
)

func TestRecallAndPrecision(t *testing.T) {
	truth := Keys([]string{"a", "b", "c", "d"})
	got := Keys([]string{"a", "b", "x"})
	if r := Recall(truth, got); r != 0.5 {
		t.Errorf("recall = %v", r)
	}
	if p := Precision(truth, got); p < 0.666 || p > 0.667 {
		t.Errorf("precision = %v", p)
	}
	if Recall(MatchSet{}, got) != 1 {
		t.Error("empty truth recall must be 1")
	}
	if Precision(truth, MatchSet{}) != 1 {
		t.Error("empty got precision must be 1")
	}
}

func TestLatencySummary(t *testing.T) {
	var l LatencySummary
	if l.Mean() != 0 || l.Percentile(95) != 0 || l.Count() != 0 {
		t.Error("empty summary must be zero")
	}
	for i := 1; i <= 100; i++ {
		l.Add(event.Time(i))
	}
	if l.Mean() != 50 {
		t.Errorf("mean = %d", l.Mean())
	}
	if l.Percentile(95) != 95 {
		t.Errorf("p95 = %d", l.Percentile(95))
	}
	if l.Percentile(99) != 99 {
		t.Errorf("p99 = %d", l.Percentile(99))
	}
	// Adding after a percentile query re-sorts correctly.
	l.Add(1000)
	if l.Percentile(100) != 1000 {
		t.Errorf("p100 after add = %d", l.Percentile(100))
	}
}

func TestBoundStat(t *testing.T) {
	var l LatencySummary
	for i := 1; i <= 100; i++ {
		l.Add(event.Time(i))
	}
	if BoundMean.Of(&l) != 50 || BoundP95.Of(&l) != 95 || BoundP99.Of(&l) != 99 {
		t.Error("BoundStat.Of wrong")
	}
	if BoundMean.String() != "avg" || BoundP95.String() != "p95" || BoundP99.String() != "p99" {
		t.Error("BoundStat names wrong")
	}
}

func TestRunNoSheddingFindsAllMatches(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 41, InterArrival: 40 * event.Microsecond})
	res := Run(m, s, RunConfig{})
	if res.Strategy != "None" {
		t.Errorf("strategy = %s", res.Strategy)
	}
	if res.Events != len(s) {
		t.Errorf("events = %d", res.Events)
	}
	if res.ShedEvents != 0 || res.Stats.DroppedPMs != 0 {
		t.Error("no-shedding run shed something")
	}
	if len(res.Matches) == 0 {
		t.Fatal("no matches found; generator/query mismatch")
	}
	if res.Throughput <= 0 {
		t.Error("throughput not measured")
	}
	if res.Latency.Count() != len(s) {
		t.Error("latency samples missing")
	}
}

func TestRunDeterministic(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 1500, Seed: 42, InterArrival: 40 * event.Microsecond})
	a := Run(m, s, RunConfig{})
	b := Run(m, s, RunConfig{})
	if len(a.Matches) != len(b.Matches) || a.Latency.Mean() != b.Latency.Mean() ||
		a.Throughput != b.Throughput {
		t.Error("identical runs diverge")
	}
}

func TestRunSamplesPMs(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 1000, Seed: 43, InterArrival: 40 * event.Microsecond})
	res := Run(m, s, RunConfig{SamplePMsEvery: 100})
	if len(res.PMSamples) != 10 {
		t.Fatalf("samples = %d", len(res.PMSamples))
	}
	any := false
	for _, p := range res.PMSamples {
		if p.Count > 0 {
			any = true
		}
	}
	if !any {
		t.Error("all PM samples zero")
	}
}

// dropAll is a strategy shedding every input event.
type dropAll struct{ shed.Strategy }

func (dropAll) Name() string                             { return "dropAll" }
func (dropAll) AdmitEvent(*event.Event, event.Time) bool { return false }

func TestRunWithTotalInputShedding(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 500, Seed: 44, InterArrival: 40 * event.Microsecond})
	res := Run(m, s, RunConfig{Strategy: dropAll{shed.None{}}})
	if len(res.Matches) != 0 {
		t.Error("matches despite total shedding")
	}
	if res.ShedEventRatio() != 1 {
		t.Errorf("shed ratio = %v", res.ShedEventRatio())
	}
	// Shed events are nearly free: throughput must dwarf the unshed run.
	full := Run(m, s, RunConfig{})
	if res.Throughput <= full.Throughput {
		t.Error("total shedding did not raise throughput")
	}
}

func TestRunRatios(t *testing.T) {
	r := &RunResult{Events: 100, ShedEvents: 25}
	r.Stats.CreatedPMs = 40
	r.Stats.DroppedPMs = 10
	if r.ShedEventRatio() != 0.25 {
		t.Error("event ratio")
	}
	if r.ShedPMRatio() != 0.25 {
		t.Error("PM ratio")
	}
	empty := &RunResult{}
	if empty.ShedEventRatio() != 0 || empty.ShedPMRatio() != 0 {
		t.Error("empty ratios must be 0")
	}
}

// Overload sanity: a denser stream must push the no-shedding latency far
// beyond the service time of a light stream — the regime every shedding
// experiment depends on.
func TestOverloadRegime(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	light := gen.DS1(gen.DS1Config{Events: 3000, Seed: 45, InterArrival: 80 * event.Microsecond})
	dense := gen.DS1(gen.DS1Config{Events: 3000, Seed: 45, InterArrival: 15 * event.Microsecond})
	lightRes := Run(m, light, RunConfig{})
	denseRes := Run(m, dense, RunConfig{})
	if denseRes.Latency.Mean() < 10*lightRes.Latency.Mean() {
		t.Errorf("dense mean latency %v not >> light %v",
			denseRes.Latency.Mean(), lightRes.Latency.Mean())
	}
	t.Logf("light: mean=%v p95=%v thr=%.0f ev/s, matches=%d",
		lightRes.Latency.Mean(), lightRes.Latency.Percentile(95), lightRes.Throughput, len(lightRes.Matches))
	t.Logf("dense: mean=%v p95=%v thr=%.0f ev/s, matches=%d",
		denseRes.Latency.Mean(), denseRes.Latency.Percentile(95), denseRes.Throughput, len(denseRes.Matches))
}

var _ = engine.DefaultCosts
