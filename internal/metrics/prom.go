package metrics

import (
	"fmt"
	"io"
)

// PromWriter renders series in the Prometheus text exposition format
// (version 0.0.4). It factors the HELP/TYPE/sample boilerplate out of
// HTTP /metrics handlers; it holds no state beyond the output writer, so
// a handler allocates one per request.
type PromWriter struct {
	w      io.Writer
	common []string
}

// NewPromWriter writes exposition text to w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Common sets label pairs (alternating key, value) prepended to every
// subsequent sample's label set — e.g. node="n1" so one Prometheus
// scrape config can aggregate a cluster without relabeling. Odd
// trailing entries are ignored.
func (p *PromWriter) Common(labels ...string) { p.common = labels }

// Counter emits the HELP/TYPE header for a counter series.
func (p *PromWriter) Counter(name, help string) { p.header(name, "counter", help) }

// Gauge emits the HELP/TYPE header for a gauge series.
func (p *PromWriter) Gauge(name, help string) { p.header(name, "gauge", help) }

// Summary emits the HELP/TYPE header for a summary series.
func (p *PromWriter) Summary(name, help string) { p.header(name, "summary", help) }

func (p *PromWriter) header(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one float sample; labels are alternating key, value
// pairs.
func (p *PromWriter) Sample(name string, value float64, labels ...string) {
	p.name(name, labels)
	fmt.Fprintf(p.w, " %g\n", value)
}

// SampleUint emits one integer sample without float rounding (counters
// past 2^53 would lose precision through %g).
func (p *PromWriter) SampleUint(name string, value uint64, labels ...string) {
	p.name(name, labels)
	fmt.Fprintf(p.w, " %d\n", value)
}

// name writes the series name and label set; %q covers the quote,
// backslash, and newline escaping the exposition format requires.
func (p *PromWriter) name(name string, labels []string) {
	io.WriteString(p.w, name)
	if len(p.common) >= 2 || len(labels) >= 2 {
		io.WriteString(p.w, "{")
		n := 0
		for _, set := range [][]string{p.common, labels} {
			for i := 0; i+1 < len(set); i += 2 {
				if n > 0 {
					io.WriteString(p.w, ",")
				}
				fmt.Fprintf(p.w, "%s=%q", set[i], set[i+1])
				n++
			}
		}
		io.WriteString(p.w, "}")
	}
}
