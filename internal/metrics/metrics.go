// Package metrics computes the evaluation measures of the paper (§VI-A)
// — recall, precision, throughput, latency statistics, shed ratios — and
// provides the Runner that drives a query, a stream, and a shedding
// strategy through the virtual-time processing loop.
package metrics

import (
	"sort"

	"cepshed/internal/event"
)

// MatchSet is a set of complete-match identities (engine.Match.Key).
type MatchSet map[string]bool

// Keys builds a MatchSet from a list of match keys.
func Keys(keys []string) MatchSet {
	s := make(MatchSet, len(keys))
	for _, k := range keys {
		s[k] = true
	}
	return s
}

// Recall returns |got ∩ truth| / |truth| (1 for empty truth).
func Recall(truth, got MatchSet) float64 {
	if len(truth) == 0 {
		return 1
	}
	hit := 0
	for k := range got {
		if truth[k] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// Precision returns |got ∩ truth| / |got| (1 for empty got).
func Precision(truth, got MatchSet) float64 {
	if len(got) == 0 {
		return 1
	}
	hit := 0
	for k := range got {
		if truth[k] {
			hit++
		}
	}
	return float64(hit) / float64(len(got))
}

// LatencySummary aggregates per-event latencies over a whole run.
type LatencySummary struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Add records one latency sample.
func (l *LatencySummary) Add(lat event.Time) {
	l.samples = append(l.samples, float64(lat))
	l.sum += float64(lat)
	l.sorted = false
}

// Count returns the number of samples.
func (l *LatencySummary) Count() int { return len(l.samples) }

// Mean returns the average latency.
func (l *LatencySummary) Mean() event.Time {
	if len(l.samples) == 0 {
		return 0
	}
	return event.Time(l.sum / float64(len(l.samples)))
}

// Percentile returns the p-th percentile latency.
func (l *LatencySummary) Percentile(p float64) event.Time {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	idx := int(p/100*float64(len(l.samples))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return event.Time(l.samples[idx])
}

// BoundStat selects which latency statistic a bound applies to.
type BoundStat uint8

const (
	// BoundMean bounds the sliding average latency.
	BoundMean BoundStat = iota
	// BoundP95 bounds the sliding 95th percentile.
	BoundP95
	// BoundP99 bounds the sliding 99th percentile.
	BoundP99
)

// String names the statistic.
func (b BoundStat) String() string {
	switch b {
	case BoundP95:
		return "p95"
	case BoundP99:
		return "p99"
	default:
		return "avg"
	}
}

// Of extracts the statistic from a run's latency summary.
func (b BoundStat) Of(l *LatencySummary) event.Time {
	switch b {
	case BoundP95:
		return l.Percentile(95)
	case BoundP99:
		return l.Percentile(99)
	default:
		return l.Mean()
	}
}
