package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cepshed/internal/event"
)

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 8; v++ {
		h.Record(event.Time(v))
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 7 {
		t.Errorf("q1 = %d, want 7", got)
	}
	if got := h.Max(); got != 7 {
		t.Errorf("max = %d, want 7", got)
	}
}

func TestHistogramQuantileError(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, the shape latency tails take.
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		samples = append(samples, v)
		h.Record(event.Time(v))
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := float64(h.Quantile(q))
		want := float64(sorted[int(q*float64(len(sorted)))])
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("q%.2f = %.0f, want within 15%% of %.0f", q, got, want)
		}
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("quantile of negative sample = %d, want 0", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				h.Record(event.Time(rng.Int63n(1 << 30)))
				_ = h.Quantile(0.99)
				_ = h.Mean()
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 8*5000 {
		t.Fatalf("count = %d, want %d", h.Count(), 8*5000)
	}
}
