package metrics

import (
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// RunConfig configures one processing run.
type RunConfig struct {
	// Costs calibrates the engine's virtual work. Zero value uses
	// engine.DefaultCosts().
	Costs engine.Costs
	// Strategy is the shedding strategy; nil means no shedding.
	Strategy shed.Strategy
	// BoundStat selects the smoothed latency statistic handed to the
	// strategy's Control (paper figures bound avg, p95, or p99 latency).
	BoundStat BoundStat
	// SmoothWindow is the sliding window for the smoothed latency
	// (paper: a sliding average over 1,000 measurements).
	SmoothWindow int
	// SamplePMsEvery, when > 0, samples the live partial-match count
	// every that many events (Fig 1's series).
	SamplePMsEvery int
	// DeferredNegation enables witness-based negation in the engine (the
	// shedding-sensitive semantics of the non-monotonicity experiment).
	DeferredNegation bool
}

// PMSample is one sampled point of the live partial-match count.
type PMSample struct {
	Time  event.Time
	Seq   uint64
	Count int
}

// RunResult aggregates everything a run measured.
type RunResult struct {
	// Strategy is the name of the strategy that ran.
	Strategy string
	// Matches maps match keys to their detection latency.
	Matches map[string]event.Time
	// Events is the total number of stream events offered.
	Events int
	// ShedEvents is the number discarded by input-based shedding.
	ShedEvents int
	// Stats is the engine's counter snapshot.
	Stats engine.Stats
	// Latency summarizes per-event latencies over the whole run.
	Latency *LatencySummary
	// Throughput is events per virtual second of busy time.
	Throughput float64
	// PMSamples is the live partial-match count over time (optional).
	PMSamples []PMSample
}

// MatchSet returns the identities of the detected matches.
func (r *RunResult) MatchSet() MatchSet {
	s := make(MatchSet, len(r.Matches))
	for k := range r.Matches {
		s[k] = true
	}
	return s
}

// ShedEventRatio is the fraction of events discarded by ρI.
func (r *RunResult) ShedEventRatio() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.ShedEvents) / float64(r.Events)
}

// ShedPMRatio is the fraction of created partial matches discarded by ρS.
func (r *RunResult) ShedPMRatio() float64 {
	if r.Stats.CreatedPMs == 0 {
		return 0
	}
	return float64(r.Stats.DroppedPMs) / float64(r.Stats.CreatedPMs)
}

// Run drives the stream through a fresh engine under the given strategy
// and returns the measured result. The virtual-time loop is:
//
//  1. ρI decides whether to admit the event; shed events still cost a
//     small filtering overhead.
//  2. The engine processes admitted events; the single-server queue turns
//     the work into a latency sample.
//  3. The strategy observes results and runs its control step with the
//     smoothed latency; shedding work is charged to the server.
func Run(m *nfa.Machine, stream event.Stream, cfg RunConfig) *RunResult {
	costs := cfg.Costs
	if costs == (engine.Costs{}) {
		costs = engine.DefaultCosts()
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = shed.None{}
	}
	smooth := cfg.SmoothWindow
	if smooth <= 0 {
		smooth = 1000
	}

	en := engine.New(m, costs)
	en.DeferredNegation = cfg.DeferredNegation
	strategy.Attach(en)
	var server vclock.Server
	sliding := vclock.NewSlidingStats(smooth)
	res := &RunResult{
		Strategy: strategy.Name(),
		Matches:  map[string]event.Time{},
		Latency:  &LatencySummary{},
	}

	for _, e := range stream {
		res.Events++
		if !strategy.AdmitEvent(e, e.Time) {
			res.ShedEvents++
			lat := server.Process(e.Time, costs.PerShedEvent)
			sliding.Add(lat)
			res.Latency.Add(lat)
			continue
		}
		r := en.Process(e)
		lat := server.Process(e.Time, r.Work)
		sliding.Add(lat)
		res.Latency.Add(lat)
		for _, match := range r.Matches {
			res.Matches[match.Key()] = lat
		}
		strategy.Observe(&r, e.Time)

		var smoothed event.Time
		switch cfg.BoundStat {
		case BoundP95:
			smoothed = sliding.Percentile(95)
		case BoundP99:
			smoothed = sliding.Percentile(99)
		default:
			smoothed = sliding.Mean()
		}
		if work := strategy.Control(e.Time, smoothed); work > 0 {
			server.AddWork(work)
		}

		if cfg.SamplePMsEvery > 0 && res.Events%cfg.SamplePMsEvery == 0 {
			res.PMSamples = append(res.PMSamples, PMSample{
				Time: e.Time, Seq: e.Seq, Count: en.LiveCount(),
			})
		}
	}
	res.Stats = en.Stats()
	res.Throughput = server.Throughput()
	return res
}
