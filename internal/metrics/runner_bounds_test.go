package metrics

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// recorder captures the smoothed latency values handed to Control, so we
// can verify the runner feeds the configured statistic.
type recorder struct {
	shed.None
	vals []event.Time
}

func (r *recorder) Control(now event.Time, lat event.Time) vclock.Cost {
	r.vals = append(r.vals, lat)
	return 0
}

func TestRunnerFeedsConfiguredBoundStat(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 1500, Seed: 61, InterArrival: 20 * event.Microsecond})
	stats := []BoundStat{BoundMean, BoundP95, BoundP99}
	finals := make([]event.Time, len(stats))
	for i, st := range stats {
		rec := &recorder{}
		Run(m, s, RunConfig{Strategy: rec, BoundStat: st})
		if len(rec.vals) == 0 {
			t.Fatal("Control never called")
		}
		finals[i] = rec.vals[len(rec.vals)-1]
	}
	// Under queueing load the tail statistics dominate the mean.
	if !(finals[0] <= finals[1] && finals[1] <= finals[2]) {
		t.Errorf("mean %v, p95 %v, p99 %v not ordered", finals[0], finals[1], finals[2])
	}
}

func TestRunnerChargesControlWork(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 400, Seed: 62, InterArrival: 20 * event.Microsecond})
	free := Run(m, s, RunConfig{})
	costly := Run(m, s, RunConfig{Strategy: constWork{}})
	// Charging extra control work must raise observed latency.
	if costly.Latency.Mean() <= free.Latency.Mean() {
		t.Errorf("control work not charged: %v <= %v",
			costly.Latency.Mean(), free.Latency.Mean())
	}
}

type constWork struct{ shed.None }

func (constWork) Control(event.Time, event.Time) vclock.Cost { return 5000 }

func TestRunnerSmoothWindowConfigurable(t *testing.T) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 300, Seed: 63, InterArrival: 20 * event.Microsecond})
	// A tiny smoothing window reacts faster; just ensure it runs and the
	// recorded series differs from the default.
	recSmall := &recorder{}
	Run(m, s, RunConfig{Strategy: recSmall, SmoothWindow: 10})
	recBig := &recorder{}
	Run(m, s, RunConfig{Strategy: recBig, SmoothWindow: 1000})
	if len(recSmall.vals) != len(recBig.vals) {
		t.Fatal("sample counts differ")
	}
	same := true
	for i := range recSmall.vals {
		if recSmall.vals[i] != recBig.vals[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("smoothing window had no effect")
	}
}

var _ = engine.DefaultCosts
