package metrics

import (
	"math/bits"
	"sync/atomic"

	"cepshed/internal/event"
)

// Histogram buckets: each power-of-two octave of the nanosecond range is
// split into 2^histSubBits sub-buckets, giving a relative quantile error
// bounded by 1/2^histSubBits (~12.5%) across the full int64 range. The
// layout matches HDR-style histograms but with fixed memory and no
// resizing, so recording is a single atomic increment.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits) * histSub
)

// Histogram is a streaming latency histogram safe for concurrent use: any
// number of goroutines may Record while others read quantiles. It covers
// the full non-negative int64 nanosecond range with bounded relative
// error and constant memory; the zero value is NOT ready — use
// NewHistogram.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < histSub {
		if v < 0 {
			v = 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= histSubBits
	sub := int((uint64(v) >> (exp - histSubBits)) & (histSub - 1))
	return (exp-histSubBits)*histSub + sub + histSub
	// The first histSub buckets hold exact values 0..histSub-1; above
	// that, bucket (e,s) covers [2^e·(1+s/8), 2^e·(1+(s+1)/8)).
}

// histLower returns the inclusive lower bound of a bucket.
func histLower(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	idx -= histSub
	exp := idx/histSub + histSubBits
	sub := idx % histSub
	return (int64(1)<<exp + int64(sub)<<(exp-histSubBits))
}

// Record adds one sample (negative samples clamp to zero).
func (h *Histogram) Record(v event.Time) {
	x := int64(v)
	if x < 0 {
		x = 0
	}
	h.counts[histBucket(x)].Add(1)
	h.n.Add(1)
	h.sum.Add(x)
	for {
		m := h.max.Load()
		if x <= m || h.max.CompareAndSwap(m, x) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Mean returns the average sample.
func (h *Histogram) Mean() event.Time {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return event.Time(h.sum.Load() / int64(n))
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() event.Time { return event.Time(h.max.Load()) }

// Quantile returns the q-th quantile (q in [0,1]) as the lower bound of
// the bucket holding that rank; concurrent Records yield a momentary
// snapshot, not a torn read of any single bucket.
func (h *Histogram) Quantile(q float64) event.Time {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			return event.Time(histLower(i))
		}
	}
	return h.Max()
}
