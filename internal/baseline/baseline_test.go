package baseline

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/shed"
)

const testIA = 40 * event.Microsecond

func ds1Machine(t *testing.T) (*nfa.Machine, event.Stream) {
	t.Helper()
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 3000, Seed: 31, InterArrival: testIA})
	return m, s
}

func drive(t *testing.T, m *nfa.Machine, s event.Stream, strat shed.Strategy, lat event.Time) (shedEvents int, stats engine.Stats) {
	t.Helper()
	en := engine.New(m, engine.DefaultCosts())
	strat.Attach(en)
	for _, e := range s {
		if !strat.AdmitEvent(e, e.Time) {
			shedEvents++
			continue
		}
		res := en.Process(e)
		strat.Observe(&res, e.Time)
		strat.Control(e.Time, lat)
	}
	return shedEvents, en.Stats()
}

func TestEstimateSelectivity(t *testing.T) {
	m, s := ds1Machine(t)
	sel := EstimateSelectivity(m, s)
	// An A event with a common payload must have utility in (0,1].
	a := event.New("A", 0, map[string]event.Value{"ID": event.Int(1), "V": event.Int(2)})
	if u := sel.EventUtility(a); u < 0 || u > 1 {
		t.Errorf("A utility = %v", u)
	}
	// A D event never participates in Q1 matches.
	d := event.New("D", 0, map[string]event.Value{"ID": event.Int(1), "V": event.Int(2)})
	if u := sel.EventUtility(d); u != 0 {
		t.Errorf("D utility = %v, want 0", u)
	}
	// Unseen payloads fall back to the type-level estimate.
	weird := event.New("A", 0, map[string]event.Value{"ID": event.Int(999), "V": event.Int(999)})
	if u := sel.EventUtility(weird); u < 0 || u > 1 {
		t.Errorf("fallback utility = %v", u)
	}
	if sel.Query() != m.Query {
		t.Error("Query accessor wrong")
	}
}

func TestSelectivityPMUtility(t *testing.T) {
	m, s := ds1Machine(t)
	sel := EstimateSelectivity(m, s)
	en := engine.New(m, engine.DefaultCosts())
	en.Process(event.New("A", 0, map[string]event.Value{"ID": event.Int(1), "V": event.Int(2)}))
	pm := en.PartialMatches()[0]
	if u := sel.PMUtility(pm); u < 0 || u > 1 {
		t.Errorf("PM utility = %v", u)
	}
}

func TestRandomInputBoundMode(t *testing.T) {
	m, s := ds1Machine(t)
	// Sustained violation: RI must shed a substantial share.
	ri := NewRandomInput(10*event.Microsecond, 1)
	shedEvents, _ := drive(t, m, s, ri, 100*event.Microsecond)
	if ratio := float64(shedEvents) / float64(len(s)); ratio < 0.3 {
		t.Errorf("RI shed ratio under violation = %.3f", ratio)
	}
	// No violation: nothing shed.
	ri2 := NewRandomInput(10*event.Microsecond, 1)
	shedEvents, _ = drive(t, m, s, ri2, 5*event.Microsecond)
	if shedEvents != 0 {
		t.Errorf("RI shed %d events without violation", shedEvents)
	}
}

func TestRandomInputRatioMode(t *testing.T) {
	m, s := ds1Machine(t)
	ri := NewRandomInputRatio(0.5, 2)
	shedEvents, _ := drive(t, m, s, ri, 0)
	ratio := float64(shedEvents) / float64(len(s))
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("RI fixed ratio = %.3f, want ~0.5", ratio)
	}
	if ri.Name() != "RI" {
		t.Error("name")
	}
}

func TestSelectivityInputRatioPrefersUseless(t *testing.T) {
	m, s := ds1Machine(t)
	sel := EstimateSelectivity(m, s)
	si := NewSelectivityInputRatio(sel, 0.25, 3)
	if si.Name() != "SI" {
		t.Error("name")
	}
	en := engine.New(m, engine.DefaultCosts())
	si.Attach(en)
	var shedD, totalD, shedAll int
	for _, e := range s {
		if e.Type == "D" {
			totalD++
		}
		if !si.AdmitEvent(e, e.Time) {
			shedAll++
			if e.Type == "D" {
				shedD++
			}
			continue
		}
		en.Process(e)
	}
	all := float64(shedAll) / float64(len(s))
	if all < 0.18 || all > 0.32 {
		t.Errorf("SI overall shed ratio = %.3f, want ~0.25", all)
	}
	// D events are useless for Q1 (they are ~25% of the stream): the 25%
	// shedding budget should hit them overwhelmingly.
	dRate := float64(shedD) / float64(totalD)
	if dRate < 0.6 {
		t.Errorf("SI sheds only %.3f of useless D events", dRate)
	}
}

func TestSelectivityInputBoundMode(t *testing.T) {
	m, s := ds1Machine(t)
	sel := EstimateSelectivity(m, s)
	si := NewSelectivityInput(sel, 10*event.Microsecond, 4)
	shedEvents, _ := drive(t, m, s, si, 50*event.Microsecond)
	if shedEvents == 0 {
		t.Error("SI shed nothing under sustained violation")
	}
	si2 := NewSelectivityInput(sel, 10*event.Microsecond, 4)
	shedEvents, _ = drive(t, m, s, si2, 1*event.Microsecond)
	if shedEvents != 0 {
		t.Errorf("SI shed %d events without violation", shedEvents)
	}
}

func TestRandomStateBoundMode(t *testing.T) {
	m, s := ds1Machine(t)
	rs := NewRandomState(10*event.Microsecond, 5)
	if rs.Name() != "RS" {
		t.Error("name")
	}
	shedEvents, stats := drive(t, m, s, rs, 100*event.Microsecond)
	if shedEvents != 0 {
		t.Error("RS must not shed input events")
	}
	if stats.DroppedPMs == 0 {
		t.Error("RS dropped no PMs under sustained violation")
	}
	rs2 := NewRandomState(10*event.Microsecond, 5)
	_, stats = drive(t, m, s, rs2, 1*event.Microsecond)
	if stats.DroppedPMs != 0 {
		t.Error("RS dropped PMs without violation")
	}
}

func TestRandomStateRatioMode(t *testing.T) {
	m, s := ds1Machine(t)
	rs := NewRandomStateRatio(0.4, 6)
	_, stats := drive(t, m, s, rs, 0)
	got := float64(stats.DroppedPMs) / float64(stats.CreatedPMs)
	if got < 0.28 || got > 0.5 {
		t.Errorf("RS dropped/created = %.3f, want ~0.4", got)
	}
}

func TestSelectivityStateModes(t *testing.T) {
	m, s := ds1Machine(t)
	sel := EstimateSelectivity(m, s)
	ss := NewSelectivityState(sel, 10*event.Microsecond, 7)
	if ss.Name() != "SS" {
		t.Error("name")
	}
	_, stats := drive(t, m, s, ss, 100*event.Microsecond)
	if stats.DroppedPMs == 0 {
		t.Error("SS dropped no PMs under sustained violation")
	}
	ssr := NewSelectivityStateRatio(sel, 0.3, 8)
	_, stats = drive(t, m, s, ssr, 0)
	got := float64(stats.DroppedPMs) / float64(stats.CreatedPMs)
	if got < 0.2 || got > 0.4 {
		t.Errorf("SS dropped/created = %.3f, want ~0.3", got)
	}
}

// Selection quality: at the same shed ratio, SS (utility-ranked at the
// paper's type/state granularity) should retain roughly as many matches
// as RS or more. The granularity is deliberately coarse (§VI-A), so a
// small deficit from randomness is tolerated.
func TestSelectivityBeatsRandomState(t *testing.T) {
	m, s := ds1Machine(t)
	sel := EstimateSelectivity(m, s)
	work := gen.DS1(gen.DS1Config{Events: 3000, Seed: 77, InterArrival: testIA})

	count := func(strat shed.Strategy) int {
		en := engine.New(m, engine.DefaultCosts())
		strat.Attach(en)
		matches := 0
		for _, e := range work {
			if !strat.AdmitEvent(e, e.Time) {
				continue
			}
			res := en.Process(e)
			matches += len(res.Matches)
			strat.Control(e.Time, 0)
		}
		return matches
	}
	rsMatches := count(NewRandomStateRatio(0.5, 9))
	ssMatches := count(NewSelectivityStateRatio(sel, 0.5, 9))
	if float64(ssMatches) < 0.85*float64(rsMatches) {
		t.Errorf("SS matches %d << RS matches %d at equal ratio", ssMatches, rsMatches)
	}
}
