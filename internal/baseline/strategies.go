package baseline

import (
	"math/rand"
	"sort"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// RandomInput (RI) discards input events uniformly at random, the policy
// implemented by stock streaming systems (Kafka, Heron). In bound mode a
// drop controller ties the rate to the latency violation; in ratio mode
// the rate is fixed.
type RandomInput struct {
	rng  *rand.Rand
	ctrl *shed.DropController
	rate float64 // fixed ratio when ctrl == nil
}

// NewRandomInput builds the latency-bound-driven RI.
func NewRandomInput(bound event.Time, seed int64) *RandomInput {
	return &RandomInput{rng: rand.New(rand.NewSource(seed)), ctrl: shed.NewDropController(bound)}
}

// NewRandomInputRatio builds the fixed-ratio RI (Fig 6).
func NewRandomInputRatio(ratio float64, seed int64) *RandomInput {
	return &RandomInput{rng: rand.New(rand.NewSource(seed)), rate: ratio}
}

// Name returns "RI".
func (r *RandomInput) Name() string { return "RI" }

// Attach is a no-op.
func (r *RandomInput) Attach(*engine.Engine) {}

// AdmitEvent drops events at the current rate.
func (r *RandomInput) AdmitEvent(e *event.Event, now event.Time) bool {
	rate := r.rate
	if r.ctrl != nil {
		rate = r.ctrl.Rate()
	}
	return r.rng.Float64() >= rate
}

// Observe is a no-op.
func (r *RandomInput) Observe(*engine.Result, event.Time) {}

// Control updates the drop controller.
func (r *RandomInput) Control(now event.Time, lat event.Time) vclock.Cost {
	if r.ctrl != nil {
		r.ctrl.Update(lat)
	}
	return 0
}

// SelectivityInput (SI) discards the events with the lowest estimated
// query selectivity — semantic load shedding in the tradition of
// Tatbul et al. and Gedik et al.
type SelectivityInput struct {
	sel  *Selectivity
	rng  *rand.Rand
	ctrl *shed.DropController
	util *shed.UtilityThreshold // fixed-ratio mode
	thr  *shed.UtilityThreshold // bound mode, rebuilt when the rate moves
	seed int64
}

// NewSelectivityInput builds the latency-bound-driven SI.
func NewSelectivityInput(sel *Selectivity, bound event.Time, seed int64) *SelectivityInput {
	return &SelectivityInput{
		sel:  sel,
		rng:  rand.New(rand.NewSource(seed)),
		ctrl: shed.NewDropController(bound),
		seed: seed,
	}
}

// NewSelectivityInputRatio builds the fixed-ratio SI (Fig 6).
func NewSelectivityInputRatio(sel *Selectivity, ratio float64, seed int64) *SelectivityInput {
	return &SelectivityInput{
		sel:  sel,
		rng:  rand.New(rand.NewSource(seed)),
		util: shed.NewUtilityThreshold(ratio, 512, seed),
	}
}

// Name returns "SI".
func (s *SelectivityInput) Name() string { return "SI" }

// Attach is a no-op.
func (s *SelectivityInput) Attach(*engine.Engine) {}

// AdmitEvent sheds the lowest-utility fraction of events matching the
// current drop rate (bound mode) or the fixed ratio.
func (s *SelectivityInput) AdmitEvent(e *event.Event, now event.Time) bool {
	if s.util != nil {
		return !s.util.ShouldShed(s.sel.EventUtility(e))
	}
	rate := s.ctrl.Rate()
	if rate <= 0 {
		return true
	}
	if s.thr == nil || s.thr.Target != rate {
		s.thr = shed.NewUtilityThreshold(rate, 256, s.seed+int64(rate*1e6))
	}
	return !s.thr.ShouldShed(s.sel.EventUtility(e))
}

// Observe is a no-op.
func (s *SelectivityInput) Observe(*engine.Result, event.Time) {}

// Control updates the drop controller.
func (s *SelectivityInput) Control(now event.Time, lat event.Time) vclock.Cost {
	if s.ctrl != nil {
		s.ctrl.Update(lat)
	}
	return 0
}

// RandomState (RS) discards a random fraction of the live partial
// matches whenever the latency bound is violated (with a re-trigger
// delay), or keeps a fixed dropped/created ratio in ratio mode.
type RandomState struct {
	rng   *rand.Rand
	bound event.Time
	en    *engine.Engine

	delay     int
	sinceShed int

	ratio   float64 // > 0 in ratio mode
	tracker shed.RatioTracker
	period  int
	sinceGC int
}

// NewRandomState builds the latency-bound-driven RS.
func NewRandomState(bound event.Time, seed int64) *RandomState {
	return &RandomState{rng: rand.New(rand.NewSource(seed)), bound: bound, delay: 200, sinceShed: 200}
}

// NewRandomStateRatio builds the fixed-ratio RS (Fig 6).
func NewRandomStateRatio(ratio float64, seed int64) *RandomState {
	return &RandomState{
		rng:     rand.New(rand.NewSource(seed)),
		ratio:   ratio,
		tracker: shed.RatioTracker{Target: ratio},
		period:  32,
	}
}

// Name returns "RS".
func (r *RandomState) Name() string { return "RS" }

// Attach keeps the engine and tracks creations in ratio mode.
func (r *RandomState) Attach(en *engine.Engine) {
	r.en = en
	if r.ratio > 0 {
		prev := en.OnCreate
		en.OnCreate = func(pm *engine.PartialMatch) {
			r.tracker.Seen(1)
			if prev != nil {
				prev(pm)
			}
		}
	}
}

// AdmitEvent admits everything (state-based strategy).
func (r *RandomState) AdmitEvent(*event.Event, event.Time) bool { return true }

// Observe is a no-op.
func (r *RandomState) Observe(*engine.Result, event.Time) {}

// Control sheds random partial matches.
func (r *RandomState) Control(now event.Time, lat event.Time) vclock.Cost {
	if r.ratio > 0 {
		r.sinceGC++
		if r.sinceGC < r.period {
			return 0
		}
		r.sinceGC = 0
		deficit := r.tracker.Deficit()
		if deficit <= 0 {
			return 0
		}
		live := r.en.LiveCount()
		if live == 0 {
			return 0
		}
		p := float64(deficit) / float64(live)
		n, work := r.en.DropIf(func(pm *engine.PartialMatch) bool { return r.rng.Float64() < p })
		r.tracker.Shed(n)
		return work
	}
	r.sinceShed++
	if lat <= r.bound || r.sinceShed < r.delay {
		return 0
	}
	r.sinceShed = 0
	v := float64(lat-r.bound) / float64(lat)
	_, work := r.en.DropIf(func(pm *engine.PartialMatch) bool { return r.rng.Float64() < v })
	return work
}

// SelectivityState (SS) discards the partial matches with the lowest
// estimated completion probability — the state-based analogue of semantic
// shedding, following the idea of prioritizing by historic selectivity.
type SelectivityState struct {
	sel   *Selectivity
	rng   *rand.Rand
	bound event.Time
	en    *engine.Engine

	delay     int
	sinceShed int

	ratio   float64
	tracker shed.RatioTracker
	period  int
	sinceGC int
}

// NewSelectivityState builds the latency-bound-driven SS.
func NewSelectivityState(sel *Selectivity, bound event.Time, seed int64) *SelectivityState {
	return &SelectivityState{
		sel: sel, rng: rand.New(rand.NewSource(seed)),
		bound: bound, delay: 200, sinceShed: 200,
	}
}

// NewSelectivityStateRatio builds the fixed-ratio SS (Fig 6).
func NewSelectivityStateRatio(sel *Selectivity, ratio float64, seed int64) *SelectivityState {
	return &SelectivityState{
		sel: sel, rng: rand.New(rand.NewSource(seed)),
		ratio:   ratio,
		tracker: shed.RatioTracker{Target: ratio},
		period:  32,
	}
}

// Name returns "SS".
func (s *SelectivityState) Name() string { return "SS" }

// Attach keeps the engine and tracks creations in ratio mode.
func (s *SelectivityState) Attach(en *engine.Engine) {
	s.en = en
	if s.ratio > 0 {
		prev := en.OnCreate
		en.OnCreate = func(pm *engine.PartialMatch) {
			s.tracker.Seen(1)
			if prev != nil {
				prev(pm)
			}
		}
	}
}

// AdmitEvent admits everything (state-based strategy).
func (s *SelectivityState) AdmitEvent(*event.Event, event.Time) bool { return true }

// Observe is a no-op.
func (s *SelectivityState) Observe(*engine.Result, event.Time) {}

// Control sheds the lowest-selectivity partial matches.
func (s *SelectivityState) Control(now event.Time, lat event.Time) vclock.Cost {
	var deficit int
	if s.ratio > 0 {
		s.sinceGC++
		if s.sinceGC < s.period {
			return 0
		}
		s.sinceGC = 0
		deficit = s.tracker.Deficit()
	} else {
		s.sinceShed++
		if lat <= s.bound || s.sinceShed < s.delay {
			return 0
		}
		s.sinceShed = 0
		v := float64(lat-s.bound) / float64(lat)
		deficit = int(v * float64(s.en.LiveCount()))
	}
	if deficit <= 0 {
		return 0
	}
	pms := s.en.PartialMatches()
	type scored struct {
		id   uint64
		util float64
	}
	cands := make([]scored, 0, len(pms))
	for _, pm := range pms {
		cands = append(cands, scored{pm.ID(), s.sel.PMUtility(pm)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].util < cands[j].util })
	if deficit > len(cands) {
		deficit = len(cands)
	}
	shedSet := make(map[uint64]bool, deficit)
	for i := 0; i < deficit; i++ {
		shedSet[cands[i].id] = true
	}
	n, work := s.en.DropIf(func(pm *engine.PartialMatch) bool { return shedSet[pm.ID()] })
	if s.ratio > 0 {
		s.tracker.Shed(n)
	}
	return work
}

var (
	_ shed.Strategy = (*RandomInput)(nil)
	_ shed.Strategy = (*SelectivityInput)(nil)
	_ shed.Strategy = (*RandomState)(nil)
	_ shed.Strategy = (*SelectivityState)(nil)
)
