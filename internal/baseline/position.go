package baseline

import (
	"math/rand"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/shed"
	"cepshed/internal/vclock"
)

// PositionInput (PI) is an extension baseline inspired by eSPICE (Slo,
// Bhowmik & Rothermel, Middleware 2019), which the paper's related work
// discusses: the utility of an input event is estimated from its event
// type's typical RELATIVE POSITION inside the query window. An event
// whose type usually contributes early in a window is valuable while the
// window is young, and nearly worthless late — and vice versa.
//
// Offline, the estimator replays training data and records, for every
// event that participated in a complete match, the relative position
// (event time minus match start, over the window length) at which it was
// consumed, bucketed per type. Online, an arriving event's utility is
// the probability mass its type has at positions *no earlier than* the
// event's offset within the oldest live window — late events of
// early-position types shed first.
type PositionInput struct {
	util *PositionUtility
	rng  *rand.Rand
	ctrl *shed.DropController
	thr  *shed.UtilityThreshold
	rt   *shed.UtilityThreshold // fixed-ratio mode
	seed int64
	en   *engine.Engine
}

// PositionUtility holds the per-type position histograms.
type PositionUtility struct {
	window  event.Time
	buckets int
	// tail[type][b] = probability an event of the type participates at a
	// relative position >= b/buckets.
	tail map[string][]float64
}

const positionBuckets = 8

// EstimatePositionUtility learns per-type position histograms from a
// training stream.
func EstimatePositionUtility(m *nfa.Machine, training event.Stream) *PositionUtility {
	pu := &PositionUtility{
		window:  m.Query.Window.Duration,
		buckets: positionBuckets,
		tail:    map[string][]float64{},
	}
	if pu.window <= 0 {
		// Count-based windows: approximate with the training mean gap.
		if len(training) > 1 {
			mean := training.Duration() / event.Time(len(training)-1)
			pu.window = mean * event.Time(m.Query.Window.Count)
		} else {
			pu.window = event.Second
		}
	}
	counts := map[string][]float64{}
	en := engine.New(m, engine.DefaultCosts())
	for _, e := range training {
		res := en.Process(e)
		for _, match := range res.Matches {
			start := match.Events[0].Time
			for _, me := range match.Events {
				b := pu.bucket(me.Time - start)
				if counts[me.Type] == nil {
					counts[me.Type] = make([]float64, pu.buckets)
				}
				counts[me.Type][b]++
			}
		}
	}
	for typ, hist := range counts {
		var total float64
		for _, c := range hist {
			total += c
		}
		tail := make([]float64, pu.buckets)
		acc := 0.0
		for b := pu.buckets - 1; b >= 0; b-- {
			acc += hist[b] / total
			tail[b] = acc
		}
		pu.tail[typ] = tail
	}
	return pu
}

func (pu *PositionUtility) bucket(off event.Time) int {
	if pu.window <= 0 {
		return 0
	}
	b := int(int64(off) * int64(pu.buckets) / int64(pu.window))
	if b < 0 {
		b = 0
	}
	if b >= pu.buckets {
		b = pu.buckets - 1
	}
	return b
}

// utility estimates how much match-participation mass the type still has
// from the event's position (relative to the oldest live window) onward.
func (pu *PositionUtility) utility(e *event.Event, oldest event.Time) float64 {
	tail, ok := pu.tail[e.Type]
	if !ok {
		return 0
	}
	return tail[pu.bucket(e.Time-oldest)]
}

// NewPositionInput builds the latency-bound-driven PI.
func NewPositionInput(util *PositionUtility, bound event.Time, seed int64) *PositionInput {
	return &PositionInput{util: util, rng: rand.New(rand.NewSource(seed)),
		ctrl: shed.NewDropController(bound), seed: seed}
}

// NewPositionInputRatio builds the fixed-ratio PI.
func NewPositionInputRatio(util *PositionUtility, ratio float64, seed int64) *PositionInput {
	return &PositionInput{util: util, rng: rand.New(rand.NewSource(seed)),
		rt: shed.NewUtilityThreshold(ratio, 512, seed)}
}

// Name returns "PI".
func (p *PositionInput) Name() string { return "PI" }

// Attach keeps the engine to find the oldest live window.
func (p *PositionInput) Attach(en *engine.Engine) { p.en = en }

// oldestStart returns the start time of the oldest live partial match
// (the event's own time when none are live).
func (p *PositionInput) oldestStart(e *event.Event) event.Time {
	oldest := e.Time
	if p.en != nil {
		for _, pm := range p.en.PartialMatches() {
			if pm.StartTime() < oldest {
				oldest = pm.StartTime()
			}
		}
	}
	return oldest
}

// AdmitEvent sheds the events with the least remaining position utility.
func (p *PositionInput) AdmitEvent(e *event.Event, now event.Time) bool {
	if p.rt != nil {
		return !p.rt.ShouldShed(p.util.utility(e, p.oldestStart(e)))
	}
	rate := p.ctrl.Rate()
	if rate <= 0 {
		return true
	}
	if p.thr == nil || p.thr.Target != rate {
		p.thr = shed.NewUtilityThreshold(rate, 256, p.seed+int64(rate*1e6))
	}
	return !p.thr.ShouldShed(p.util.utility(e, p.oldestStart(e)))
}

// Observe is a no-op.
func (p *PositionInput) Observe(*engine.Result, event.Time) {}

// Control updates the drop controller.
func (p *PositionInput) Control(now event.Time, lat event.Time) vclock.Cost {
	if p.ctrl != nil {
		p.ctrl.Update(lat)
	}
	return 0
}

var _ shed.Strategy = (*PositionInput)(nil)
