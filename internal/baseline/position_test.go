package baseline

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func TestEstimatePositionUtility(t *testing.T) {
	m, s := ds1Machine(t)
	pu := EstimatePositionUtility(m, s)
	// For Q1 (SEQ A B C), A events participate early: their tail mass at
	// bucket 0 must be 1 and must decrease toward later buckets.
	tail, ok := pu.tail["A"]
	if !ok {
		t.Fatal("no histogram for A")
	}
	if tail[0] < 0.999 {
		t.Errorf("tail[0] = %v, want 1", tail[0])
	}
	for b := 1; b < len(tail); b++ {
		if tail[b] > tail[b-1]+1e-9 {
			t.Fatalf("tail not non-increasing at %d: %v", b, tail)
		}
	}
	// C events close matches: they skew later than A events.
	cTail := pu.tail["C"]
	if cTail == nil {
		t.Fatal("no histogram for C")
	}
	if cTail[2] <= tail[2] {
		t.Errorf("C tail at mid-window (%v) should exceed A's (%v)", cTail[2], tail[2])
	}
	// Types never in matches have no mass.
	d := event.New("D", 0, map[string]event.Value{"ID": event.Int(1)})
	if pu.utility(d, 0) != 0 {
		t.Error("D utility should be 0")
	}
}

func TestPositionInputRatioMode(t *testing.T) {
	m, s := ds1Machine(t)
	pu := EstimatePositionUtility(m, s)
	pi := NewPositionInputRatio(pu, 0.4, 5)
	if pi.Name() != "PI" {
		t.Error("name")
	}
	shedEvents, _ := drive(t, m, s, pi, 0)
	ratio := float64(shedEvents) / float64(len(s))
	if ratio < 0.3 || ratio > 0.5 {
		t.Errorf("PI fixed ratio = %.3f, want ~0.4", ratio)
	}
}

func TestPositionInputBoundMode(t *testing.T) {
	m, s := ds1Machine(t)
	pu := EstimatePositionUtility(m, s)
	pi := NewPositionInput(pu, 10*event.Microsecond, 6)
	shedEvents, stats := drive(t, m, s, pi, 100*event.Microsecond)
	if shedEvents == 0 {
		t.Error("PI shed nothing under sustained violation")
	}
	if stats.DroppedPMs != 0 {
		t.Error("PI must not drop state")
	}
	pi2 := NewPositionInput(pu, 10*event.Microsecond, 6)
	shedEvents, _ = drive(t, m, s, pi2, 1*event.Microsecond)
	if shedEvents != 0 {
		t.Error("PI shed without violation")
	}
}

// PI should beat RI at equal ratios on a workload where position
// structure matters: it preferentially sheds never-matching types (zero
// tail mass) and late events of early types.
func TestPositionBeatsRandomInput(t *testing.T) {
	m, s := ds1Machine(t)
	pu := EstimatePositionUtility(m, s)
	work := gen.DS1(gen.DS1Config{Events: 3000, Seed: 88, InterArrival: testIA})
	count := func(strat interface {
		Attach(*engine.Engine)
		AdmitEvent(*event.Event, event.Time) bool
	}) int {
		en := engine.New(m, engine.DefaultCosts())
		strat.Attach(en)
		matches := 0
		for _, e := range work {
			if !strat.AdmitEvent(e, e.Time) {
				continue
			}
			matches += len(en.Process(e).Matches)
		}
		return matches
	}
	ri := count(NewRandomInputRatio(0.4, 9))
	pi := count(NewPositionInputRatio(pu, 0.4, 9))
	if pi <= ri {
		t.Errorf("PI matches %d <= RI matches %d at equal ratio", pi, ri)
	}
}

func TestPositionCountWindowApproximation(t *testing.T) {
	q := query.MustParse(`PATTERN SEQ(A a, B b) WHERE a.ID = b.ID WITHIN 200 EVENTS`)
	m := nfa.MustCompile(q)
	s := gen.DS1(gen.DS1Config{Events: 2000, Seed: 90, InterArrival: testIA})
	pu := EstimatePositionUtility(m, s)
	if pu.window <= 0 {
		t.Fatal("count-window approximation failed")
	}
}
