// Package baseline implements the shedding strategies the paper compares
// against (§VI-A): random input shedding (RI, as in Kafka), selectivity-
// based input shedding (SI, semantic load shedding), random state
// shedding (RS), and selectivity-based state shedding (SS). Each strategy
// comes in a latency-bound-driven mode and a fixed-shedding-ratio mode
// (the latter for the selection-quality experiment, Fig 6).
//
// SI and SS assess utility at the granularity the paper gives them:
// "the query selectivity per event type" (§VI-A), optionally refined by a
// single hint attribute (the bike-sharing case study lets them "exploit
// the user type", §VI-I). This coarse granularity — versus the hybrid
// cost model's class granularity — is exactly the difference the
// evaluation measures.
package baseline

import (
	"fmt"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// Selectivity holds the offline selectivity statistics SI and SS use:
// per event type (optionally refined by one hint attribute) the
// probability of participating in a complete match, and per automaton
// state the probability that a partial match completes.
type Selectivity struct {
	machine *nfa.Machine
	// hint optionally refines buckets by one attribute.
	hint string
	// eventUtil maps type(+hint) buckets to participation probability.
	eventUtil map[string]float64
	// stateUtil maps state(+hint of last event) to completion probability.
	stateUtil map[string]float64
}

// EstimateSelectivity runs the query over a training stream and derives
// type-level selectivity statistics.
func EstimateSelectivity(m *nfa.Machine, training event.Stream) *Selectivity {
	return EstimateSelectivityWithHint(m, training, "")
}

// EstimateSelectivityWithHint additionally refines buckets by one event
// attribute (e.g. the user type in the bike-sharing case study).
func EstimateSelectivityWithHint(m *nfa.Machine, training event.Stream, hint string) *Selectivity {
	s := &Selectivity{
		machine:   m,
		hint:      hint,
		eventUtil: map[string]float64{},
		stateUtil: map[string]float64{},
	}
	eventSeen := map[string]float64{}
	eventHit := map[string]float64{}
	stateSeen := map[string]float64{}
	stateHit := map[string]float64{}

	en := engine.New(m, engine.DefaultCosts())
	type rec struct {
		key    string
		parent *rec
		hit    bool
	}
	byID := map[uint64]*rec{}
	en.OnCreate = func(pm *engine.PartialMatch) {
		r := &rec{key: s.pmKey(pm)}
		if p := pm.Parent(); p != nil {
			r.parent = byID[p.ID()]
		}
		byID[pm.ID()] = r
		stateSeen[r.key]++
	}
	hitEvents := map[uint64]bool{}
	for _, e := range training {
		res := en.Process(e)
		for _, match := range res.Matches {
			for _, me := range match.Events {
				hitEvents[me.Seq] = true
			}
			if src := match.Source; src != nil {
				for r := byID[src.ID()]; r != nil; r = r.parent {
					if !r.hit {
						r.hit = true
						stateHit[r.key]++
					}
				}
			}
		}
	}
	for _, e := range training {
		key := s.eventKey(e)
		eventSeen[key]++
		if hitEvents[e.Seq] {
			eventHit[key]++
		}
	}
	for k, n := range eventSeen {
		s.eventUtil[k] = eventHit[k] / n
	}
	for k, n := range stateSeen {
		s.stateUtil[k] = stateHit[k] / n
	}
	return s
}

// eventKey buckets an event by type and, when configured, the hint
// attribute.
func (s *Selectivity) eventKey(e *event.Event) string {
	if s.hint == "" {
		return e.Type
	}
	v, ok := e.Get(s.hint)
	if !ok {
		return e.Type
	}
	return e.Type + "|" + v.String()
}

// pmKey buckets a partial match by state (and the hint of its last event).
func (s *Selectivity) pmKey(pm *engine.PartialMatch) string {
	if s.hint == "" {
		return fmt.Sprintf("s%d", pm.State())
	}
	return fmt.Sprintf("s%d|%s", pm.State(), s.eventKey(pm.LastEvent()))
}

// EventUtility returns the estimated probability that an event of this
// type (and hint bucket) participates in a complete match.
func (s *Selectivity) EventUtility(e *event.Event) float64 {
	return s.eventUtil[s.eventKey(e)]
}

// PMUtility returns the estimated completion probability of a partial
// match at its state (and hint bucket).
func (s *Selectivity) PMUtility(pm *engine.PartialMatch) float64 {
	return s.stateUtil[s.pmKey(pm)]
}

// Query returns the underlying query (observability).
func (s *Selectivity) Query() *query.Query { return s.machine.Query }
