// Package csvio reads and writes event streams as CSV, in the format
// cmd/cepgen emits: a header `seq,time_ns,type,<attr>...` followed by one
// row per event. It is the interchange point for feeding externally
// recorded data (e.g. real trip logs) into the engine.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cepshed/internal/event"
)

// Read parses a CSV stream. Attribute cells are typed by content: integer
// first, then float, otherwise string; empty cells mean "attribute
// absent". Rows may be unordered in time; the returned stream is sorted
// and renumbered.
func Read(r io.Reader) (event.Stream, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	if len(header) < 3 || header[0] != "seq" || header[1] != "time_ns" || header[2] != "type" {
		return nil, fmt.Errorf("csvio: header must start with seq,time_ns,type; got %v", header)
	}
	attrs := header[3:]
	var b event.Builder
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: %w", line+1, err)
		}
		line++
		if len(row) < 3 {
			return nil, fmt.Errorf("csvio: line %d: too few columns", line)
		}
		ts, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad time_ns %q", line, row[1])
		}
		e := event.New(row[2], event.Time(ts), nil)
		for i, a := range attrs {
			col := 3 + i
			if col >= len(row) || row[col] == "" {
				continue
			}
			e.Attrs[a] = parseValue(row[col])
		}
		b.Add(e)
	}
	s := b.Finish()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	return s, nil
}

// parseValue types a cell: int, then float, else string.
func parseValue(cell string) event.Value {
	if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return event.Int(i)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return event.Float(f)
	}
	return event.Str(cell)
}

// Write emits a stream in the cepgen CSV format. The attribute schema is
// the union of attributes across the stream, sorted by name.
func Write(w io.Writer, s event.Stream) error {
	attrSet := map[string]bool{}
	for _, e := range s {
		for a := range e.Attrs {
			attrSet[a] = true
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write(append([]string{"seq", "time_ns", "type"}, attrs...)); err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	row := make([]string, 3+len(attrs))
	for _, e := range s {
		row[0] = strconv.FormatUint(e.Seq, 10)
		row[1] = strconv.FormatInt(int64(e.Time), 10)
		row[2] = e.Type
		for i, a := range attrs {
			v, ok := e.Get(a)
			switch {
			case !ok:
				row[3+i] = ""
			case v.Kind == event.KindString:
				row[3+i] = v.S
			case v.Kind == event.KindFloat:
				row[3+i] = strconv.FormatFloat(v.F, 'g', -1, 64)
			default:
				row[3+i] = strconv.FormatInt(v.I, 10)
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
