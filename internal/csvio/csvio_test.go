package csvio

import (
	"bytes"
	"strings"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	orig := gen.DS2(gen.DS2Config{Events: 500, Seed: 9})
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("len = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		a, b := orig[i], got[i]
		if a.Type != b.Type || a.Time != b.Time || a.Seq != b.Seq {
			t.Fatalf("event %d header mismatch: %v vs %v", i, a, b)
		}
		if len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("event %d attr count: %d vs %d", i, len(a.Attrs), len(b.Attrs))
		}
		for k, v := range a.Attrs {
			if !b.Attrs[k].Equal(v) {
				t.Fatalf("event %d attr %s: %v vs %v", i, k, v, b.Attrs[k])
			}
		}
	}
}

func TestReadTypesCells(t *testing.T) {
	src := `seq,time_ns,type,n,f,s
0,100,A,7,2.5,hello
1,200,B,,,world`
	s, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Attrs["n"].Kind != event.KindInt || s[0].Int("n") != 7 {
		t.Error("int cell mistyped")
	}
	if s[0].Attrs["f"].Kind != event.KindFloat || s[0].Float("f") != 2.5 {
		t.Error("float cell mistyped")
	}
	if s[0].Str("s") != "hello" {
		t.Error("string cell wrong")
	}
	// Empty cells mean absent attributes.
	if _, ok := s[1].Get("n"); ok {
		t.Error("empty cell became an attribute")
	}
	if s[1].Str("s") != "world" {
		t.Error("second row string wrong")
	}
}

func TestReadSortsUnorderedRows(t *testing.T) {
	src := `seq,time_ns,type
0,300,A
1,100,B
2,200,C`
	s, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Type != "B" || s[1].Type != "C" || s[2].Type != "A" {
		t.Errorf("rows not sorted by time: %v %v %v", s[0].Type, s[1].Type, s[2].Type)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		``,                          // no header
		`foo,bar,baz`,               // wrong header
		"seq,time_ns,type\n0,x,A",   // bad time
		"seq,time_ns,type\n\"0,1,A", // malformed csv
	}
	for _, src := range bad {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) should fail", src)
		}
	}
}

func TestWriteEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "seq,time_ns,type") {
		t.Errorf("header missing: %q", buf.String())
	}
}
