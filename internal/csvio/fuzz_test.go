package csvio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the CSV reader never panics and that everything it
// accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"seq,time_ns,type\n0,100,A",
		"seq,time_ns,type,v\n0,100,A,1\n1,200,B,2.5\n2,300,C,x",
		"seq,time_ns,type,a,b\n0,5,T,,\n",
		"bogus",
		"seq,time_ns,type\n0,notanumber,A",
		"seq,time_ns,type\n\"unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatalf("write-after-read failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(s) {
			t.Fatalf("round trip length %d != %d", len(again), len(s))
		}
	})
}
