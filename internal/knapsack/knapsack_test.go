package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func items(vw ...float64) []Item {
	out := make([]Item, 0, len(vw)/2)
	for i := 0; i+1 < len(vw); i += 2 {
		out = append(out, Item{ID: i / 2, Value: vw[i], Weight: vw[i+1]})
	}
	return out
}

func sumBy(items []Item, ids []int, weight bool) float64 {
	in := map[int]bool{}
	for _, id := range ids {
		in[id] = true
	}
	var s float64
	for _, it := range items {
		if in[it.ID] {
			if weight {
				s += it.Weight
			} else {
				s += it.Value
			}
		}
	}
	return s
}

func TestSolveDPBasic(t *testing.T) {
	// Classic: capacity 5, best is items 1+2 (value 7, weight 5).
	its := items(3, 4, 4, 3, 3, 2)
	keep := SolveDP(its, 5)
	if got := sumBy(its, keep, false); got != 7 {
		t.Errorf("kept value = %v, want 7 (keep=%v)", got, keep)
	}
	if w := sumBy(its, keep, true); w > 5.001 {
		t.Errorf("kept weight = %v exceeds capacity", w)
	}
}

func TestSolveDPZeroCapacity(t *testing.T) {
	its := items(3, 4, 4, 3)
	keep := SolveDP(its, 0)
	if w := sumBy(its, keep, true); w > 0.0011 {
		t.Errorf("zero capacity kept weight %v", w)
	}
}

func TestSolveDPZeroWeightItems(t *testing.T) {
	its := items(5, 0, 1, 1)
	keep := SolveDP(its, 0.5)
	if got := sumBy(its, keep, false); got != 5 {
		t.Errorf("free item not kept: value %v", got)
	}
}

func TestSolveDPNonPositiveValueNeverKept(t *testing.T) {
	its := items(-2, 0.1, 0, 0.1, 3, 0.1)
	keep := SolveDP(its, 10)
	if len(keep) != 1 || keep[0] != 2 {
		t.Errorf("keep = %v, want [2]", keep)
	}
}

func TestSolveGreedyRespectsCapacity(t *testing.T) {
	its := items(10, 5, 6, 4, 5, 4)
	keep := SolveGreedy(its, 8)
	if w := sumBy(its, keep, true); w > 8 {
		t.Errorf("greedy kept weight = %v", w)
	}
	if len(keep) == 0 {
		t.Error("greedy kept nothing")
	}
}

func TestSolveGreedyPrefersRatio(t *testing.T) {
	// Item 0 ratio 2, item 1 ratio 3: only one fits.
	its := items(4, 2, 6, 2)
	keep := SolveGreedy(its, 2)
	if len(keep) != 1 || keep[0] != 1 {
		t.Errorf("keep = %v, want [1]", keep)
	}
}

func TestMinCoverBasic(t *testing.T) {
	// Four equal-weight classes; require covering > 0.5 of total weight 1.0.
	its := items(0.4, 0.25, 0.3, 0.25, 0.2, 0.25, 0.1, 0.25)
	shed := MinCover(its, 0.5, Exact)
	if w := sumBy(its, shed, true); w <= 0.5-1e-6 {
		t.Errorf("cover weight = %v, want > 0.5 (shed=%v)", w, shed)
	}
	// Optimal shed is the two lowest-value classes {2,3}: value 0.3.
	if v := sumBy(its, shed, false); v > 0.3+1e-9 {
		t.Errorf("shed value = %v, want <= 0.3", v)
	}
}

func TestMinCoverRequiredExceedsTotal(t *testing.T) {
	its := items(1, 0.2, 1, 0.3)
	shed := MinCover(its, 10, Exact)
	if len(shed) != 2 {
		t.Errorf("must shed everything, got %v", shed)
	}
}

func TestMinCoverGreedyCovers(t *testing.T) {
	its := items(0.5, 0.1, 0.2, 0.4, 0.2, 0.3, 0.1, 0.2)
	shed := MinCover(its, 0.6, Greedy)
	if w := sumBy(its, shed, true); w <= 0.6-1e-6 {
		t.Errorf("greedy cover weight = %v, want > 0.6", w)
	}
}

func TestMinCoverZeroRequired(t *testing.T) {
	its := items(0.5, 0.5, 0.5, 0.5)
	shed := MinCover(its, 0, Exact)
	// Requirement ~0: shedding nothing of value is optimal, but the cover
	// must still be strictly positive only if required > 0; with 0 nothing
	// needs shedding.
	if v := sumBy(its, shed, false); v > 1e-9 {
		t.Errorf("shed value = %v, want 0", v)
	}
}

// Property: DP solution value is never worse than greedy's.
func TestDPDominatesGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		its := make([]Item, n)
		var total float64
		for i := range its {
			its[i] = Item{ID: i, Value: rng.Float64(), Weight: 0.01 + rng.Float64()}
			total += its[i].Weight
		}
		capacity := rng.Float64() * total
		dp := sumBy(its, SolveDP(its, capacity), false)
		gr := sumBy(its, SolveGreedy(its, capacity), false)
		// Allow for DP weight-scaling granularity.
		return dp >= gr-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MinCover always satisfies the cover requirement (or sheds all).
func TestMinCoverAlwaysCovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		its := make([]Item, n)
		var total float64
		for i := range its {
			its[i] = Item{ID: i, Value: rng.Float64(), Weight: 0.05 + rng.Float64()}
			total += its[i].Weight
		}
		required := rng.Float64() * total
		for _, solver := range []Solver{Exact, Greedy} {
			shed := MinCover(its, required, solver)
			w := sumBy(its, shed, true)
			// DP weight scaling grants a small tolerance.
			if w < required-total*2e-3 && len(shed) < n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
