// Package knapsack implements the 0/1 knapsack solvers that shedding-set
// selection relies on (§IV-B, §V-C of the paper): an exact dynamic program
// over scaled integer weights and a greedy value/weight approximation.
//
// Shedding-set selection is a minimum-cost covering problem: choose a shed
// set D minimizing lost contribution subject to saved consumption
// exceeding the latency violation. MinCover solves it through the
// complement formulation: keep the maximum-contribution set whose
// consumption fits in the remaining capacity; everything else is shed.
package knapsack

import "sort"

// Item is one knapsack item. Value is what we want to keep (contribution
// share Δ+); Weight is what keeping it costs (consumption share Δ−).
type Item struct {
	ID     int
	Value  float64
	Weight float64
}

// defaultResolution scales float weights into DP units. 1000 keeps the DP
// table small (items × 1000) while giving 0.1% weight precision.
const defaultResolution = 1000

// SolveDP solves max Σvalue s.t. Σweight <= capacity exactly (up to weight
// scaling) and returns the IDs of the kept items. Weights and capacity must
// be non-negative; items with non-positive scaled weight are always kept
// when their value is positive.
func SolveDP(items []Item, capacity float64) []int {
	return solveDP(items, capacity, defaultResolution)
}

func solveDP(items []Item, capacity float64, resolution int) []int {
	if capacity < 0 {
		capacity = 0
	}
	w := make([]int, len(items))
	cap := int(capacity * float64(resolution))
	for i, it := range items {
		wi := int(it.Weight*float64(resolution) + 0.5)
		if wi < 0 {
			wi = 0
		}
		w[i] = wi
	}
	// best[c] = max value using a prefix of items within weight c;
	// choice[i][c] records whether item i is taken at budget c.
	best := make([]float64, cap+1)
	choice := make([][]bool, len(items))
	for i, it := range items {
		choice[i] = make([]bool, cap+1)
		if it.Value <= 0 {
			continue // never beneficial to keep
		}
		if w[i] == 0 {
			for c := 0; c <= cap; c++ {
				best[c] += it.Value
				choice[i][c] = true
			}
			continue
		}
		for c := cap; c >= w[i]; c-- {
			if cand := best[c-w[i]] + it.Value; cand > best[c] {
				best[c] = cand
				choice[i][c] = true
			}
		}
	}
	// Reconstruct.
	keep := make([]int, 0, len(items))
	c := cap
	for i := len(items) - 1; i >= 0; i-- {
		if !choice[i][c] {
			continue
		}
		keep = append(keep, items[i].ID)
		if items[i].Value > 0 {
			c -= w[i]
			if c < 0 {
				c = 0
			}
		}
	}
	sort.Ints(keep)
	return keep
}

// SolveGreedy approximates max Σvalue s.t. Σweight <= capacity by taking
// items in descending value/weight ratio. Zero-weight positive-value items
// are always kept. Returns the IDs of the kept items.
func SolveGreedy(items []Item, capacity float64) []int {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := items[idx[a]], items[idx[b]]
		ra := ratio(ia)
		rb := ratio(ib)
		if ra != rb {
			return ra > rb
		}
		return ia.Weight < ib.Weight
	})
	var used float64
	keep := make([]int, 0, len(items))
	for _, i := range idx {
		it := items[i]
		if it.Value <= 0 {
			continue
		}
		if it.Weight <= 0 || used+it.Weight <= capacity {
			keep = append(keep, it.ID)
			if it.Weight > 0 {
				used += it.Weight
			}
		}
	}
	sort.Ints(keep)
	return keep
}

func ratio(it Item) float64 {
	if it.Weight <= 0 {
		if it.Value > 0 {
			return 1e18 // free value first
		}
		return 0
	}
	return it.Value / it.Weight
}

// Solver selects which algorithm MinCover uses.
type Solver int

const (
	// Exact uses the dynamic program.
	Exact Solver = iota
	// Greedy uses the ratio heuristic (§V-C).
	Greedy
)

// MinCover chooses a shed set D minimizing Σvalue(D) subject to
// Σweight(D) >= required, via the complement knapsack with capacity
// total−required. Returns the IDs of the shed items. If required exceeds
// the total weight, everything is shed. (The paper states the cover
// constraint strictly; on a continuous consumption measure the non-strict
// form is operationally identical and avoids degenerate exact covers.)
func MinCover(items []Item, required float64, solver Solver) []int {
	if required <= 0 {
		// Nothing to cover: the complement formulation would still shed
		// every non-positive-value item, which is wrong when the caller
		// (e.g. the cross-query arbiter) treats the shed set as imposed
		// drops rather than a keep-set optimization.
		return nil
	}
	var total float64
	for _, it := range items {
		total += it.Weight
	}
	if required > total {
		all := make([]int, len(items))
		for i, it := range items {
			all[i] = it.ID
		}
		sort.Ints(all)
		return all
	}
	capacity := total - required
	var keep []int
	switch solver {
	case Greedy:
		keep = SolveGreedy(items, capacity)
	default:
		keep = SolveDP(items, capacity)
	}
	kept := make(map[int]bool, len(keep))
	for _, id := range keep {
		kept[id] = true
	}
	shed := make([]int, 0, len(items)-len(keep))
	for _, it := range items {
		if !kept[it.ID] {
			shed = append(shed, it.ID)
		}
	}
	sort.Ints(shed)
	return shed
}
