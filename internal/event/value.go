// Package event defines the event model shared by every component of the
// system: typed attribute values, schemas, timestamped events, and event
// streams. Time is virtual (see internal/vclock); one Time unit is one
// virtual nanosecond.
package event

import (
	"fmt"
	"strconv"
)

// Kind enumerates the attribute value kinds supported by the event model.
type Kind uint8

const (
	// KindNone marks the zero Value, which carries no data.
	KindNone Kind = iota
	// KindInt is a 64-bit signed integer attribute.
	KindInt
	// KindFloat is a 64-bit floating point attribute.
	KindFloat
	// KindString is a string attribute.
	KindString
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value has
// KindNone and represents an absent attribute.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a floating point Value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str returns a string Value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// IsNumeric reports whether the value holds an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat coerces a numeric value to float64. Strings and absent values
// coerce to 0; numeric comparisons against them are rejected earlier by
// the predicate compiler.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt coerces a numeric value to int64 (floats truncate).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Equal reports whether two values are equal. Numeric values compare by
// numeric value regardless of int/float representation; strings compare
// byte-wise; values of incomparable kinds are unequal.
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		switch v.Kind {
		case KindInt:
			return v.I == o.I
		case KindFloat:
			return v.F == o.F
		case KindString:
			return v.S == o.S
		default:
			return true // both absent
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// Numerics compare numerically, strings lexically. Comparing a numeric
// against a string orders the numeric first (deterministic total order).
func (v Value) Compare(o Value) int {
	vn, on := v.IsNumeric(), o.IsNumeric()
	switch {
	case vn && on:
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	case v.Kind == KindString && o.Kind == KindString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		default:
			return 0
		}
	case vn:
		return -1
	case on:
		return 1
	default:
		return 0
	}
}

// String renders the value for logs and error messages.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.S)
	default:
		return "<none>"
	}
}
