package event

import (
	"strings"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
		{4 * Second, "4s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestEventAccessors(t *testing.T) {
	e := New("A", 10*Microsecond, map[string]Value{
		"ID": Int(3),
		"V":  Float(7.5),
		"U":  Str("member"),
	})
	if e.Int("ID") != 3 {
		t.Errorf("Int(ID) = %d", e.Int("ID"))
	}
	if e.Float("V") != 7.5 {
		t.Errorf("Float(V) = %v", e.Float("V"))
	}
	if e.Str("U") != "member" {
		t.Errorf("Str(U) = %q", e.Str("U"))
	}
	if _, ok := e.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
	if v, ok := e.Get("ID"); !ok || v.AsInt() != 3 {
		t.Error("Get(ID) wrong")
	}
}

func TestEventNewNilAttrs(t *testing.T) {
	e := New("A", 0, nil)
	if e.Attrs == nil {
		t.Fatal("New must allocate an attrs map")
	}
	if e.Int("anything") != 0 {
		t.Error("absent attribute should coerce to 0")
	}
}

func TestEventStringDeterministic(t *testing.T) {
	e := New("B", Microsecond, map[string]Value{"b": Int(2), "a": Int(1)})
	e.Seq = 5
	s := e.String()
	if !strings.Contains(s, "B@1us#5") {
		t.Errorf("event header missing: %q", s)
	}
	// Attributes are sorted by name for deterministic output.
	if strings.Index(s, "a=1") > strings.Index(s, "b=2") {
		t.Errorf("attributes not sorted: %q", s)
	}
}
