package event

import (
	"fmt"
	"sort"
)

// Stream is an ordered sequence of events. Events must be ordered by
// non-decreasing Time; Seq numbers are their positions.
type Stream []*Event

// Builder accumulates events and assigns sequence numbers. It keeps the
// stream ordered by time: Append rejects out-of-order events, while Add
// inserts sorting lazily via Finish.
type Builder struct {
	events   []*Event
	needSort bool
	lastTime Time
}

// Append adds an event whose time must be >= the previous event's time.
func (b *Builder) Append(e *Event) error {
	if len(b.events) > 0 && e.Time < b.lastTime {
		return fmt.Errorf("event: out-of-order append: %s < %s", e.Time, b.lastTime)
	}
	b.lastTime = e.Time
	b.events = append(b.events, e)
	return nil
}

// Add inserts an event regardless of order; Finish will sort.
func (b *Builder) Add(e *Event) {
	if len(b.events) > 0 && e.Time < b.lastTime {
		b.needSort = true
	}
	if e.Time > b.lastTime {
		b.lastTime = e.Time
	}
	b.events = append(b.events, e)
}

// Len returns the number of events added so far.
func (b *Builder) Len() int { return len(b.events) }

// Finish sorts (if needed), assigns sequence numbers, and returns the stream.
// The builder is reset.
func (b *Builder) Finish() Stream {
	if b.needSort {
		sort.SliceStable(b.events, func(i, j int) bool { return b.events[i].Time < b.events[j].Time })
	}
	for i, e := range b.events {
		e.Seq = uint64(i)
	}
	s := Stream(b.events)
	*b = Builder{}
	return s
}

// Validate checks stream invariants: non-decreasing time and sequential Seq.
func (s Stream) Validate() error {
	for i, e := range s {
		if e.Seq != uint64(i) {
			return fmt.Errorf("event: stream[%d] has Seq %d", i, e.Seq)
		}
		if i > 0 && e.Time < s[i-1].Time {
			return fmt.Errorf("event: stream[%d] time %s before stream[%d] time %s",
				i, e.Time, i-1, s[i-1].Time)
		}
	}
	return nil
}

// Duration returns the time span covered by the stream.
func (s Stream) Duration() Time {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Time - s[0].Time
}

// CountType returns the number of events of the given type.
func (s Stream) CountType(typ string) int {
	n := 0
	for _, e := range s {
		if e.Type == typ {
			n++
		}
	}
	return n
}
