package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderAppendOrdered(t *testing.T) {
	var b Builder
	if err := b.Append(New("A", 1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(New("B", 1, nil)); err != nil {
		t.Fatal(err) // equal times are fine
	}
	if err := b.Append(New("C", 0, nil)); err == nil {
		t.Fatal("out-of-order append must fail")
	}
	s := b.Finish()
	if len(s) != 2 {
		t.Fatalf("len = %d", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderAddSortsOnFinish(t *testing.T) {
	var b Builder
	b.Add(New("A", 5, nil))
	b.Add(New("B", 2, nil))
	b.Add(New("C", 9, nil))
	s := b.Finish()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s[0].Type != "B" || s[1].Type != "A" || s[2].Type != "C" {
		t.Errorf("wrong order: %v %v %v", s[0].Type, s[1].Type, s[2].Type)
	}
	for i, e := range s {
		if e.Seq != uint64(i) {
			t.Errorf("seq[%d] = %d", i, e.Seq)
		}
	}
}

func TestBuilderFinishResets(t *testing.T) {
	var b Builder
	b.Add(New("A", 1, nil))
	_ = b.Finish()
	if b.Len() != 0 {
		t.Error("builder not reset after Finish")
	}
	b.Add(New("B", 0, nil)) // must not be considered out of order vs old state
	s := b.Finish()
	if len(s) != 1 || s[0].Type != "B" {
		t.Error("builder reuse broken")
	}
}

func TestStreamValidateDetectsBadSeq(t *testing.T) {
	s := Stream{New("A", 1, nil), New("B", 2, nil)}
	s[0].Seq, s[1].Seq = 0, 7
	if err := s.Validate(); err == nil {
		t.Error("bad Seq not detected")
	}
}

func TestStreamDurationAndCount(t *testing.T) {
	var b Builder
	b.Add(New("A", 10, nil))
	b.Add(New("B", 30, nil))
	b.Add(New("A", 50, nil))
	s := b.Finish()
	if s.Duration() != 40 {
		t.Errorf("Duration = %d", s.Duration())
	}
	if s.CountType("A") != 2 || s.CountType("B") != 1 || s.CountType("Z") != 0 {
		t.Error("CountType wrong")
	}
	if Stream(nil).Duration() != 0 {
		t.Error("empty stream duration must be 0")
	}
}

// Property: Finish always yields a valid stream no matter the insertion order.
func TestBuilderFinishAlwaysValid(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var b Builder
		for i := 0; i < int(n)%64; i++ {
			b.Add(New("A", Time(rng.Int63n(1000)), nil))
		}
		return b.Finish().Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
