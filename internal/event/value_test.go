package event

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(7), KindInt},
		{Float(3.5), KindFloat},
		{Str("x"), KindString},
		{Value{}, KindNone},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
	}
}

func TestValueNumericCoercion(t *testing.T) {
	if got := Int(42).AsFloat(); got != 42 {
		t.Errorf("Int(42).AsFloat() = %v", got)
	}
	if got := Float(2.75).AsInt(); got != 2 {
		t.Errorf("Float(2.75).AsInt() = %v", got)
	}
	if got := Str("9").AsFloat(); got != 0 {
		t.Errorf("Str coerces to %v, want 0", got)
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("Int(3) must not equal Str(\"3\")")
	}
	if !Str("a").Equal(Str("a")) {
		t.Error("identical strings must be equal")
	}
	if Str("a").Equal(Str("b")) {
		t.Error("distinct strings must not be equal")
	}
	if !(Value{}).Equal(Value{}) {
		t.Error("two absent values are equal")
	}
	if (Value{}).Equal(Int(0)) {
		t.Error("absent value must not equal Int(0)")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Int(99), Str("a"), -1}, // numerics order before strings
		{Str("a"), Int(99), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueEqualConsistentWithCompare(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Float(a), Float(b)
		return va.Equal(vb) == (va.Compare(vb) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-4), "-4"},
		{Float(1.5), "1.5"},
		{Str("hi"), `"hi"`},
		{Value{}, "<none>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindFloat.String() != "float" ||
		KindString.String() != "string" || KindNone.String() != "none" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}
