package event

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a point in virtual time, measured in virtual nanoseconds.
// All latencies, windows, and arrival times in the system use this unit.
type Time int64

// Convenient virtual duration constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time with an adaptive unit suffix.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a single stream element: a typed tuple with a timestamp and a
// stable sequence number assigned at generation time. Events are immutable
// once published to a stream; the engine and shedders never modify them.
type Event struct {
	// Type is the event type name (the "A" in SEQ(A a, ...)).
	Type string
	// Time is both the occurrence and the arrival timestamp of the event
	// in the virtual clock domain.
	Time Time
	// Seq is the global position of the event in its stream, starting at 0.
	Seq uint64
	// Attrs holds the payload attributes.
	Attrs map[string]Value
}

// New allocates an event. The sequence number is assigned when the event
// is appended to a Builder or Stream.
func New(typ string, t Time, attrs map[string]Value) *Event {
	if attrs == nil {
		attrs = map[string]Value{}
	}
	return &Event{Type: typ, Time: t, Attrs: attrs}
}

// Get returns the named attribute and whether it exists.
func (e *Event) Get(name string) (Value, bool) {
	v, ok := e.Attrs[name]
	return v, ok
}

// Int returns the named attribute coerced to int64 (0 if absent).
func (e *Event) Int(name string) int64 { return e.Attrs[name].AsInt() }

// Float returns the named attribute coerced to float64 (0 if absent).
func (e *Event) Float(name string) float64 { return e.Attrs[name].AsFloat() }

// Str returns the named attribute as a string ("" if absent or non-string).
func (e *Event) Str(name string) string { return e.Attrs[name].S }

// String renders the event compactly for logs and test failures.
func (e *Event) String() string {
	names := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s#%d{", e.Type, e.Time, e.Seq)
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", k, e.Attrs[k])
	}
	b.WriteByte('}')
	return b.String()
}
