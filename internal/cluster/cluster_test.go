package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/registry"
	"cepshed/internal/runtime"
)

const q1Text = `PATTERN SEQ(A a, B b, C c) WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V WITHIN 8ms`

// matchCollector counts delivered match keys across every node; a key
// seen twice is the exactly-once violation failover must not cause.
type matchCollector struct {
	mu   sync.Mutex
	seen map[string]int
}

func newMatchCollector() *matchCollector { return &matchCollector{seen: map[string]int{}} }

func (c *matchCollector) hook() func(registry.QuerySpec, int, engine.Match) {
	return func(_ registry.QuerySpec, _ int, m engine.Match) {
		// Key by the partition attribute, not m.Key(): seq numbers are
		// node-local, so seq-based keys from different nodes collide.
		key := ""
		if len(m.Events) > 0 {
			key = fmt.Sprintf("id=%d", m.Events[0].Int("ID"))
		}
		c.mu.Lock()
		c.seen[key]++
		c.mu.Unlock()
	}
}

func (c *matchCollector) counts() (total, dups int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.seen {
		total++
		if n > 1 {
			dups++
		}
	}
	return total, dups
}

// tcNode is one in-process cluster member: a real registry, a real
// Node, and a real HTTP server mounting the same /cluster routes
// cepserved does — only the process boundary is missing.
type tcNode struct {
	name   string
	reg    *registry.Registry
	in     *registry.Instance
	node   *Node
	srv    *httptest.Server
	top    Topology // the full topology (every harness node), for reloads
	muxp   *atomic.Pointer[http.ServeMux]
	seq    atomic.Uint64
	lastT  atomic.Int64
	killed sync.Once
}

func (tn *tcNode) stampTime(e *event.Event) {
	for {
		last := tn.lastT.Load()
		if int64(e.Time) >= last {
			if tn.lastT.CompareAndSwap(last, int64(e.Time)) {
				return
			}
			continue
		}
		e.Time = event.Time(last)
		return
	}
}

func (tn *tcNode) stampSeq(e *event.Event) { e.Seq = tn.seq.Add(1) - 1 }

func (tn *tcNode) bumpSeq(min uint64) {
	for {
		cur := tn.seq.Load()
		if cur >= min || tn.seq.CompareAndSwap(cur, min) {
			return
		}
	}
}

// kill takes the node down the clean way: cluster plumbing, then the
// registry (flushing its WALs — the durable state failover reads), then
// the listener so peers' heartbeats start failing. Idempotent.
func (tn *tcNode) kill() {
	tn.killed.Do(func() {
		tn.node.Close()
		tn.reg.Close()
		tn.srv.Close()
	})
}

// tcOpts customizes the harness beyond the common-path defaults.
type tcOpts struct {
	// transport, when set, supplies each node's HTTP transport keyed by
	// node name — chaos tests hand every node its own fault.NetChaos so
	// partitions can be asymmetric.
	transport      func(name string) http.RoundTripper
	forwardRetries int
	retryPolicy    runtime.RestartPolicy
	forwardBuf     int
	// topoNames, when set for a node, is the member list that node
	// boots with (default: every name) — the reload test starts the
	// incumbents on a smaller topology than the joiner.
	topoNames map[string][]string
	// deferStart nodes are built but not Start()ed; the test starts
	// them when the scenario calls for it.
	deferStart map[string]bool
}

// newTestCluster builds len(names) in-process nodes sharing one state
// root, each serving the same query over `shards` slots.
func newTestCluster(t *testing.T, names []string, shards int, col *matchCollector, det DetectorConfig) map[string]*tcNode {
	t.Helper()
	return newTestClusterOpts(t, names, shards, col, det, tcOpts{})
}

func newTestClusterOpts(t *testing.T, names []string, shards int, col *matchCollector, det DetectorConfig, opts tcOpts) map[string]*tcNode {
	t.Helper()
	root := t.TempDir()
	nodes := map[string]*tcNode{}
	var top Topology
	for _, name := range names {
		tn := &tcNode{name: name}
		var mux atomic.Pointer[http.ServeMux]
		tn.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if m := mux.Load(); m != nil {
				m.ServeHTTP(w, r)
				return
			}
			http.Error(w, "booting", http.StatusServiceUnavailable)
		}))
		tn.muxp = &mux
		nodes[name] = tn
		top.Nodes = append(top.Nodes, NodeSpec{
			Name:     name,
			Addr:     strings.TrimPrefix(tn.srv.URL, "http://"),
			StateDir: filepath.Join(root, name),
		})
	}
	for i, name := range names {
		tn := nodes[name]
		reg, err := registry.Open(registry.Config{
			Shards:   shards,
			StateDir: top.Nodes[i].StateDir,
			OnMatch:  col.hook(),
			Arbiter:  registry.ArbiterConfig{Disabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		in, err := reg.Add(registry.QuerySpec{Tenant: "t1", Name: "abc", Query: q1Text})
		if err != nil {
			t.Fatal(err)
		}
		in.WaitReady()
		nodeTop := top
		if members, ok := opts.topoNames[name]; ok {
			nodeTop = Topology{}
			keep := map[string]bool{}
			for _, m := range members {
				keep[m] = true
			}
			for _, spec := range top.Nodes {
				if keep[spec.Name] {
					nodeTop.Nodes = append(nodeTop.Nodes, spec)
				}
			}
		}
		tn.top = top
		cfg := Config{
			Self:           name,
			Topology:       nodeTop,
			Registry:       reg,
			StampTime:      tn.stampTime,
			StampSeq:       tn.stampSeq,
			BumpSeq:        tn.bumpSeq,
			Detector:       det,
			HTTPTimeout:    2 * time.Second,
			ForwardRetries: opts.forwardRetries,
			RetryPolicy:    opts.retryPolicy,
			ForwardBuf:     opts.forwardBuf,
		}
		if opts.transport != nil {
			cfg.Transport = opts.transport(name)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /cluster/health", node.HandleHealth)
		mux.HandleFunc("GET /cluster/peerview", node.HandlePeerView)
		mux.HandleFunc("GET /cluster/audit", node.HandleAudit)
		mux.HandleFunc("/cluster/placement", node.HandlePlacement)
		mux.HandleFunc("POST /cluster/forward", node.HandleForward)
		mux.HandleFunc("POST /cluster/handoff", node.HandleHandoff)
		mux.HandleFunc("GET /cluster", node.HandleStatus)
		tn.muxp.Store(mux)
		tn.reg, tn.in, tn.node = reg, in, node
	}
	for _, name := range names {
		if opts.deferStart[name] {
			continue
		}
		nodes[name].node.Start()
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.kill()
		}
	})
	return nodes
}

// abcEvents builds one guaranteed match group per id, restricted to
// the given event types so tests can split a group across phases
// (A+B now, C after a handoff). Every event carries the SAME
// timestamp: the engine's 8ms window only advances with event time, so
// partial matches built in phase one are still live — not expired —
// when the completing events arrive in phase two. Distinct ids cannot
// cross-match (the ID equality predicates), so one shared instant is
// safe.
func abcEvents(ids []int64, types ...string) []Input {
	var batch []Input
	for _, id := range ids {
		t := 10 * event.Millisecond
		for _, typ := range types {
			v := map[string]int64{"A": 1, "B": 2, "C": 3}[typ]
			e := event.New(typ, t, map[string]event.Value{"ID": event.Int(id), "V": event.Int(v)})
			batch = append(batch, Input{E: e, HasTime: true})
		}
	}
	return batch
}

// drainQueues waits until every live node's shard queues are empty.
func drainQueues(t *testing.T, nodes ...*tcNode) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		depth := 0
		for _, tn := range nodes {
			s := tn.in.Runtime().Snapshot()
			for _, ss := range s.Shards {
				depth += ss.QueueDepth
			}
		}
		if depth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queues never drained: depth=%d", depth)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitMatches polls the collector until `want` distinct matches arrive.
func waitMatches(t *testing.T, col *matchCollector, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		total, _ := col.counts()
		if total >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("matches stalled at %d, want %d", total, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func slowDetector() DetectorConfig {
	// Effectively disabled: these tests drive placement by hand.
	return DetectorConfig{Interval: time.Hour, Misses: 3, Seed: 1}
}

func fastDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Interval: 5 * time.Millisecond,
		Misses:   3,
		Policy:   runtime.RestartPolicy{BackoffBase: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond},
		Seed:     1,
	}
}

// Every (event, query) pair offered at one node's edge is accounted
// for exactly once across the cluster: processed locally, forwarded
// (and then processed remotely), dropped, shed, or unrouted — and the
// sender/receiver counters reconcile once the queues quiesce.
func TestClusterRoutingConservation(t *testing.T) {
	col := newMatchCollector()
	nodes := newTestCluster(t, []string{"n1", "n2", "n3"}, 4, col, slowDetector())
	n1 := nodes["n1"]

	ids := make([]int64, 60)
	for i := range ids {
		ids[i] = int64(i)
	}
	batch := abcEvents(ids, "A", "B", "C")

	var res RouteResult
	for i := 0; i < len(batch); i += 32 {
		end := i + 32
		if end > len(batch) {
			end = len(batch)
		}
		r := n1.node.OfferBatch(batch[i:end])
		res.Deliveries += r.Deliveries
		res.DoorRejected += r.DoorRejected
		res.ArbiterShed += r.ArbiterShed
		res.FloorSkipped += r.FloorSkipped
		res.ForwardedPairs += r.ForwardedPairs
		res.DroppedPairs += r.DroppedPairs
		res.ShedPairs += r.ShedPairs
		res.Unrouted += r.Unrouted
	}
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("forward queues never quiesced")
	}
	drainQueues(t, n1, nodes["n2"], nodes["n3"])

	local := res.Deliveries + res.DoorRejected + res.ArbiterShed + res.FloorSkipped
	accounted := local + res.ForwardedPairs + res.DroppedPairs + res.ShedPairs + res.Unrouted
	if accounted != len(batch) {
		t.Errorf("pairs accounted = %d (local %d fwd %d drop %d shed %d unrouted %d), want %d",
			accounted, local, res.ForwardedPairs, res.DroppedPairs, res.ShedPairs, res.Unrouted, len(batch))
	}
	if res.DroppedPairs != 0 || res.ShedPairs != 0 || res.Unrouted != 0 {
		t.Errorf("healthy cluster lost pairs: drop=%d shed=%d unrouted=%d",
			res.DroppedPairs, res.ShedPairs, res.Unrouted)
	}

	s1 := n1.node.Status()
	recvIn := nodes["n2"].node.Status().ForwardedIn + nodes["n3"].node.Status().ForwardedIn
	if s1.ForwardedOut != uint64(res.ForwardedPairs) || recvIn != s1.ForwardedOut {
		t.Errorf("forward counters: queued=%d sent=%d received=%d — must all agree",
			res.ForwardedPairs, s1.ForwardedOut, recvIn)
	}
	if s1.InFlight != 0 {
		t.Errorf("handoff_in_flight = %d after quiesce, want 0", s1.InFlight)
	}

	// Every event landed in exactly one engine.
	var eventsIn uint64
	for _, tn := range nodes {
		eventsIn += tn.in.Runtime().Snapshot().EventsIn
	}
	if eventsIn != uint64(len(batch)) {
		t.Errorf("sum EventsIn across nodes = %d, want %d", eventsIn, len(batch))
	}

	waitMatches(t, col, len(ids))
	if total, dups := col.counts(); total != len(ids) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0", total, dups, len(ids))
	}
}

// A planned handoff loses nothing: partial matches built on the source
// complete on the target after the slot moves.
func TestPlannedHandoffZeroLoss(t *testing.T) {
	col := newMatchCollector()
	nodes := newTestCluster(t, []string{"n1", "n2"}, 4, col, slowDetector())

	// Work with the slot that owns id probes mapping to slot-of-owner;
	// drive the move from whichever node owns slot 0.
	fp := nodes["n1"].in.Fingerprint()
	ownerName, _ := nodes["n1"].node.Placement().Owner(fp, 0)
	src := nodes[ownerName]
	var dst *tcNode
	for name, tn := range nodes {
		if name != ownerName {
			dst = tn
		}
	}

	// Collect ids that hash to slot 0.
	var ids []int64
	for id := int64(0); len(ids) < 10; id++ {
		probe := event.New("A", 0, map[string]event.Value{"ID": event.Int(id), "V": event.Int(1)})
		if src.in.ShardSlot(probe) == 0 {
			ids = append(ids, id)
		}
	}

	// Phase 1: A and B at the source — 10 live partial matches.
	src.node.OfferBatch(abcEvents(ids, "A", "B"))
	drainQueues(t, src)

	// The move: drain → export → ship → durable import → retire.
	spec := src.in.Spec()
	if err := src.node.MoveSlot(spec.Tenant, spec.Name, 0, dst.name); err != nil {
		t.Fatalf("MoveSlot: %v", err)
	}
	if got := src.node.Status().HandoffsOut; got != 1 {
		t.Fatalf("handoffs_out = %d, want 1", got)
	}
	if got := dst.node.Status().HandoffsIn; got != 1 {
		t.Fatalf("handoffs_in = %d, want 1", got)
	}
	for _, tn := range nodes {
		if owner, _ := tn.node.Placement().Owner(fp, 0); owner != dst.name {
			t.Fatalf("%s sees owner %s after move, want %s", tn.name, owner, dst.name)
		}
	}

	// Phase 2: C events, still ingested at the source, must forward to
	// the target and complete the migrated partial matches there.
	src.node.OfferBatch(abcEvents(ids, "C"))
	if !src.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("forward queue never quiesced")
	}
	drainQueues(t, dst)
	waitMatches(t, col, len(ids))
	if total, dups := col.counts(); total != len(ids) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0 — planned handoff must lose nothing", total, dups, len(ids))
	}
	if drops := src.node.Status().ForwardDrop; drops != 0 {
		t.Errorf("forward_dropped = %d during planned handoff, want 0", drops)
	}
}

// A handoff whose target dies mid-ship leaves the source authoritative:
// the slot unfreezes, nothing is lost, and the failure is counted.
func TestHandoffTargetDeathKeepsSourceAuthoritative(t *testing.T) {
	col := newMatchCollector()
	nodes := newTestCluster(t, []string{"n1", "n2"}, 4, col, slowDetector())

	fp := nodes["n1"].in.Fingerprint()
	ownerName, _ := nodes["n1"].node.Placement().Owner(fp, 0)
	src := nodes[ownerName]
	var dst *tcNode
	for name, tn := range nodes {
		if name != ownerName {
			dst = tn
		}
	}
	var ids []int64
	for id := int64(0); len(ids) < 8; id++ {
		probe := event.New("A", 0, map[string]event.Value{"ID": event.Int(id), "V": event.Int(1)})
		if src.in.ShardSlot(probe) == 0 {
			ids = append(ids, id)
		}
	}
	src.node.OfferBatch(abcEvents(ids, "A", "B"))
	drainQueues(t, src)

	// Kill the target's listener mid-protocol: the ship must fail.
	dst.srv.Close()
	spec := src.in.Spec()
	if err := src.node.MoveSlot(spec.Tenant, spec.Name, 0, dst.name); err == nil {
		t.Fatal("MoveSlot succeeded against a dead target")
	}
	st := src.node.Status()
	if st.HandoffFailed != 1 || st.HandoffsOut != 0 {
		t.Fatalf("status after failed handoff: failed=%d out=%d, want 1/0", st.HandoffFailed, st.HandoffsOut)
	}
	if st.InFlight != 0 {
		t.Fatalf("handoff_in_flight = %d after failed handoff, want 0", st.InFlight)
	}
	if owner, _ := src.node.Placement().Owner(fp, 0); owner != src.name {
		t.Fatalf("ownership moved to %s despite the failed handoff", owner)
	}

	// The slot must still serve: completing events produce every match.
	src.node.OfferBatch(abcEvents(ids, "C"))
	drainQueues(t, src)
	waitMatches(t, col, len(ids))
	if total, dups := col.counts(); total != len(ids) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0 after failed handoff", total, dups, len(ids))
	}
}

// Failover: when a node dies, survivors detect it, partition its slots
// deterministically, adopt the durable state from its directory, and
// complete its in-flight partial matches — zero duplicates, zero loss
// of flushed state. Runs with the fast detector; also exercised under
// -race by make chaos.
func TestClusterFailoverExactlyOnce(t *testing.T) {
	col := newMatchCollector()
	nodes := newTestCluster(t, []string{"n1", "n2", "n3"}, 8, col, fastDetectorConfig())
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	fp := n1.in.Fingerprint()

	// Which slots does n3 own? Deterministic: same answer on every node.
	var n3slots []int
	for slot := 0; slot < 8; slot++ {
		if owner, _ := n1.node.Placement().Owner(fp, slot); owner == "n3" {
			n3slots = append(n3slots, slot)
		}
	}
	if len(n3slots) == 0 {
		t.Fatal("rendezvous gave n3 zero of 8 slots; pick different node names")
	}

	// Phase 1: partial matches everywhere, including on n3.
	ids := make([]int64, 30)
	for i := range ids {
		ids[i] = int64(i)
	}
	n1.node.OfferBatch(abcEvents(ids, "A", "B"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("forward queues never quiesced")
	}
	drainQueues(t, n1, n2, n3)

	// Kill n3. Clean close: its WAL is flushed, so failover must lose
	// NOTHING (the unflushed-tail loss bound only applies to SIGKILL,
	// covered by the cluster-smoke e2e).
	n3.kill()

	// Survivors must notice, adopt every n3 slot, and agree on owners.
	deadline := time.Now().Add(15 * time.Second)
	for {
		adopted := n1.node.Status().Takeovers + n2.node.Status().Takeovers
		if n1.node.Placement().IsDown("n3") && n2.node.Placement().IsDown("n3") &&
			adopted == uint64(len(n3slots)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover stalled: n3 down=%v/%v takeovers=%d want %d",
				n1.node.Placement().IsDown("n3"), n2.node.Placement().IsDown("n3"),
				adopted, len(n3slots))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, slot := range n3slots {
		o1, _ := n1.node.Placement().Owner(fp, slot)
		o2, _ := n2.node.Placement().Owner(fp, slot)
		if o1 != o2 || o1 == "n3" {
			t.Fatalf("slot %d: owners diverge after failover (%s vs %s)", slot, o1, o2)
		}
	}
	if !n1.node.Degraded() {
		t.Error("cluster not marked degraded with a dead peer")
	}

	// Phase 2: completing C events. Matches whose A/B state lived on n3
	// complete on the adopters — every id exactly once.
	n1.node.OfferBatch(abcEvents(ids, "C"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("forward queues never quiesced after failover")
	}
	drainQueues(t, n1, n2)
	waitMatches(t, col, len(ids))
	if total, dups := col.counts(); total != len(ids) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0 — failover must not lose or duplicate", total, dups, len(ids))
	}
}
