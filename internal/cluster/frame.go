package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"cepshed/internal/event"
	"cepshed/internal/runtime"
)

// Forward-batch frame: the body of POST /cluster/forward is one JSON
// header line followed by NDJSON event lines. The header carries the
// idempotence and fencing state the URL-parameter protocol could not:
//
//	{"v":1,"sender":"n1","batch":7,"tenant":"t1","query":"q","slot":3,"epoch":2,"count":5}
//	{"type":"A",...}
//	... count event lines ...
//
// Batch is the sender's monotone per-process batch number — the
// receiver's dedup key (sender, batch), so a retried batch is accepted
// at most once. Epoch is the sender's view of the slot's ownership
// epoch; a receiver whose epoch is newer, or who no longer owns the
// slot, refuses the batch (409) with its own placement so the sender
// can re-route instead of double-delivering into a split brain.

// ForwardFrameVersion is the current frame version.
const ForwardFrameVersion = 1

// maxForwardHeader bounds the header line; maxForwardCount bounds the
// declared event count (the forwarder coalesces far fewer).
const (
	maxForwardHeader = 4096
	maxForwardCount  = 65536
)

// ForwardHeader is the frame's first line.
type ForwardHeader struct {
	V      int    `json:"v"`
	Sender string `json:"sender"`
	Batch  uint64 `json:"batch"`
	Tenant string `json:"tenant"`
	Query  string `json:"query"`
	Slot   int    `json:"slot"`
	Epoch  uint64 `json:"epoch"`
	Count  int    `json:"count"`
}

// EncodeForwardHeader renders the header line, newline included.
func EncodeForwardHeader(h ForwardHeader) []byte {
	b, _ := json.Marshal(h)
	return append(b, '\n')
}

// DecodeForwardHeader parses and validates one header line (with or
// without its trailing newline).
func DecodeForwardHeader(line []byte) (ForwardHeader, error) {
	var h ForwardHeader
	if len(line) > maxForwardHeader {
		return h, fmt.Errorf("cluster: forward header too long (%d bytes)", len(line))
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&h); err != nil {
		return h, fmt.Errorf("cluster: forward header: %w", err)
	}
	if h.V != ForwardFrameVersion {
		return h, fmt.Errorf("cluster: forward frame version %d, want %d", h.V, ForwardFrameVersion)
	}
	if h.Sender == "" {
		return h, errors.New("cluster: forward header: empty sender")
	}
	if h.Slot < 0 {
		return h, fmt.Errorf("cluster: forward header: negative slot %d", h.Slot)
	}
	if h.Count < 0 || h.Count > maxForwardCount {
		return h, fmt.Errorf("cluster: forward header: count %d out of range", h.Count)
	}
	return h, nil
}

// readForwardHeader consumes the header line from a stream, leaving
// the reader positioned at the first event line.
func readForwardHeader(r *bufio.Reader) (ForwardHeader, error) {
	line, err := r.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(line) == 0) {
		return ForwardHeader{}, fmt.Errorf("cluster: forward header: %w", err)
	}
	return DecodeForwardHeader(line)
}

// DecodeForwardFrame parses a complete frame from memory: the header,
// then every event line. Malformed event lines are skipped and counted
// (the sender encoded them, so a bad line is a sender bug, not a
// reason to poison the batch); a malformed header fails the frame.
// This is the fuzz target: it must never panic and never allocate
// proportionally to a lying Count.
func DecodeForwardFrame(data []byte) (ForwardHeader, []*event.Event, int, error) {
	i := bytes.IndexByte(data, '\n')
	var hline, rest []byte
	if i < 0 {
		hline, rest = data, nil
	} else {
		hline, rest = data[:i+1], data[i+1:]
	}
	h, err := DecodeForwardHeader(hline)
	if err != nil {
		return h, nil, 0, err
	}
	dec := runtime.NewLineDecoder(bytes.NewReader(rest), 0)
	var evs []*event.Event
	bad := 0
	for {
		e, _, err := dec.Next()
		if err != nil {
			var lerr *runtime.LineError
			if errors.As(err, &lerr) {
				bad++
				continue
			}
			if err != io.EOF {
				bad++
			}
			break
		}
		evs = append(evs, e)
	}
	return h, evs, bad, nil
}
