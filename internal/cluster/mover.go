package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"cepshed/internal/checkpoint"
	"cepshed/internal/registry"
)

// Planned handoff protocol (source drives):
//
//	source: ExportShard(slot)      — drain the slot through its own
//	                                 input channel, flush its WAL,
//	                                 freeze it (stray arrivals are
//	                                 quarantined, counted)
//	source: EncodeHandoff          — CEPHOF01 frame: full shard state,
//	                                 fingerprint-bound to the query
//	source: POST /cluster/handoff  — ship to the target
//	target: DecodeHandoff          — reject on fingerprint/CRC mismatch
//	target: ImportShard            — restore into the EMPTY local slot,
//	                                 take a durable snapshot, THEN emit
//	                                 matches completed by tail replay
//	target: reply {max_seq}        — import is durable at this point
//	source: RetireShard(slot)      — remove local files (state now
//	                                 lives on the target; replaying it
//	                                 here would duplicate emissions)
//	both:   placement override     — (query, slot) → target, gossiped
//
// Any failure before the target's 200 leaves the source authoritative:
// ResumeShard unfreezes the slot and nothing moved. A crash of the
// target mid-import leaves its slot empty (ImportShard stages
// everything before the committing snapshot), so a retry is safe. The
// window where the target has acked but the source hasn't retired is
// the one unavoidable gap: a source crash there leaves both nodes with
// the state on disk, and the source's reboot would replay it — the
// ceded tombstone (failover) or Retire (planned) closes it as the very
// next step, so the window is one process-crash wide, documented in
// docs/CLUSTER.md.

// MoveSlot performs a planned handoff of one (query, slot) to target.
// Zero events are lost: the slot drains before export, and stray
// events arriving at the frozen source slot are quarantined and
// counted, never silently dropped.
func (n *Node) MoveSlot(tenant, query string, slot int, target string) error {
	n.moveMu.Lock()
	defer n.moveMu.Unlock()
	in, ok := n.reg.Get(tenant, query)
	if !ok {
		return fmt.Errorf("cluster: unknown query %s/%s", tenant, query)
	}
	spec, ok := n.cfg.Topology.Find(target)
	if !ok {
		return fmt.Errorf("cluster: unknown target node %q", target)
	}
	if target == n.cfg.Self {
		return fmt.Errorf("cluster: slot already here")
	}
	if n.place.IsDown(target) {
		return fmt.Errorf("cluster: target %q is down", target)
	}
	key := SlotKey{FP: in.Fingerprint(), Slot: slot}
	if owner, _ := n.place.Owner(key.FP, slot); owner != n.cfg.Self {
		return fmt.Errorf("cluster: slot owned by %q, not this node", owner)
	}

	st, err := in.Runtime().ExportShard(slot)
	if err != nil {
		return fmt.Errorf("cluster: export: %w", err)
	}
	h := &checkpoint.Handoff{Tenant: tenant, Query: query, Shard: slot, State: st}
	frame := checkpoint.EncodeHandoff(h, in.Runtime().Fingerprint())

	// hid makes the ship idempotent: a retry after an ambiguous
	// network failure (the import may or may not have landed) replays
	// the frame under the same ID, and a target that already imported
	// it answers with the recorded ack instead of failing on the
	// now-occupied slot. Without this, a dropped handoff ACK would
	// leave BOTH nodes owning live state — the handoff split brain.
	hid := fmt.Sprintf("%s-%d", n.cfg.Self, n.batchSeq.Add(1))
	n.inFlight.Add(1)
	resp, err := n.postHandoffRetried(spec, tenant, query, hid, frame)
	n.inFlight.Add(-1)
	if err != nil {
		// Nothing moved: unfreeze and stay authoritative.
		if rerr := in.Runtime().ResumeShard(slot); rerr != nil {
			n.cfg.Logf("cluster: resume after failed handoff: %v", rerr)
		}
		n.handoffFailed.Add(1)
		return fmt.Errorf("cluster: handoff to %s: %w", target, err)
	}

	if err := in.Runtime().RetireShard(slot); err != nil {
		n.cfg.Logf("cluster: retire after handoff: %v", err)
	}
	// Adopt the epoch the target minted for this move so both ends
	// agree on the fence; fall back to a local bump for old targets.
	if resp.Epoch > 0 {
		n.place.AdoptOverride(key, target, resp.Epoch)
	} else {
		n.place.SetOverride(key, target)
	}
	n.handoffsOut.Add(1)
	n.pushPlacement()
	return nil
}

// postHandoffRetried ships one handoff frame with bounded retries.
// Retries are safe because the hid makes the import idempotent; they
// stop early when the detector declares the target down.
func (n *Node) postHandoffRetried(spec NodeSpec, tenant, query, hid string, frame []byte) (*handoffResp, error) {
	rng := rand.New(rand.NewSource(int64(nameHash(spec.Name)) ^ n.cfg.AdmissionSeed))
	var lastErr error
	for attempt := 0; attempt <= n.cfg.ForwardRetries; attempt++ {
		if attempt > 0 {
			if n.place.IsDown(spec.Name) {
				return nil, fmt.Errorf("target declared down: %w", lastErr)
			}
			t := time.NewTimer(n.cfg.RetryPolicy.Backoff(attempt, rng))
			select {
			case <-n.done:
				t.Stop()
				return nil, fmt.Errorf("node closing: %w", lastErr)
			case <-t.C:
			}
		}
		resp, err := n.postHandoff(spec.Addr, tenant, query, hid, frame)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// A definite refusal (the target answered) will not change on a
		// retry; only ambiguous transport failures are worth repeating.
		var herr *handoffHTTPError
		if errors.As(err, &herr) {
			return nil, err
		}
		n.cfg.Logf("cluster: handoff %s to %s attempt %d: %v", hid, spec.Name, attempt+1, err)
	}
	return nil, lastErr
}

type handoffResp struct {
	MaxSeq uint64 `json:"max_seq"`
	HasSeq bool   `json:"has_seq"`
	// Epoch is the fencing epoch the target minted when it recorded
	// itself as the slot's owner.
	Epoch uint64 `json:"epoch,omitempty"`
}

// handoffHTTPError is a refusal the target actually sent — retrying
// cannot help, unlike a transport error where the outcome is unknown.
type handoffHTTPError struct{ msg string }

func (e *handoffHTTPError) Error() string { return e.msg }

func (n *Node) postHandoff(addr, tenant, query, hid string, frame []byte) (*handoffResp, error) {
	// Handoffs ship a full shard snapshot; give them a generous
	// multiple of the per-call timeout.
	hc := *n.hc
	hc.Timeout = 10 * n.cfg.HTTPTimeout
	path := fmt.Sprintf("/cluster/handoff?tenant=%s&query=%s&hid=%s", urlEscape(tenant), urlEscape(query), urlEscape(hid))
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+path, nil)
	if err != nil {
		return nil, err
	}
	req.Body = io.NopCloser(bytes.NewReader(frame))
	req.ContentLength = int64(len(frame))
	req.Header.Set("Content-Type", "application/octet-stream")
	if n.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+n.cfg.AuthToken)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return nil, &handoffHTTPError{msg: fmt.Sprintf("%s: %s", resp.Status, body)}
	}
	var hr handoffResp
	if err := json.Unmarshal(body, &hr); err != nil {
		return nil, fmt.Errorf("bad handoff ack: %w", err)
	}
	return &hr, nil
}

// HandleHandoff receives a shipped shard: POST /cluster/handoff?
// tenant=&query=. The 200 reply means the state is DURABLE here (the
// import path snapshots before emitting anything), so the source may
// retire its copy.
func (n *Node) HandleHandoff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tenant, query := q.Get("tenant"), q.Get("query")
	hid := q.Get("hid")
	in, ok := n.reg.Get(tenant, query)
	if !ok {
		http.Error(w, "unknown query", http.StatusNotFound)
		return
	}
	// A retried ship whose first import landed (but whose ack was
	// lost) replays the recorded ack instead of re-importing into the
	// now-occupied slot.
	if ack, ok := n.handoffAck(hid); ok {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ack)
		return
	}
	frame, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h, err := checkpoint.DecodeHandoff(frame, in.Runtime().Fingerprint())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	maxSeq, hasSeq, err := in.Runtime().ImportShard(h)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if hasSeq && n.cfg.BumpSeq != nil {
		n.cfg.BumpSeq(maxSeq + 1)
	}
	epoch := n.place.SetOverride(SlotKey{FP: in.Fingerprint(), Slot: h.Shard}, n.cfg.Self)
	n.handoffsIn.Add(1)
	ack := handoffResp{MaxSeq: maxSeq, HasSeq: hasSeq, Epoch: epoch}
	n.recordHandoffAck(hid, ack)
	go n.pushPlacement()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ack)
}

// handoffAcks remembers the last handoffAckWindow completed imports by
// hid so a retried ship is answered, not re-imported.
const handoffAckWindow = 128

func (n *Node) handoffAck(hid string) (handoffResp, bool) {
	if hid == "" {
		return handoffResp{}, false
	}
	n.dedupMu.Lock()
	defer n.dedupMu.Unlock()
	ack, ok := n.handoffAcks[hid]
	return ack, ok
}

func (n *Node) recordHandoffAck(hid string, ack handoffResp) {
	if hid == "" {
		return
	}
	n.dedupMu.Lock()
	defer n.dedupMu.Unlock()
	if n.handoffAcks == nil {
		n.handoffAcks = map[string]handoffResp{}
	}
	n.handoffAcks[hid] = ack
	n.handoffAckFIFO = append(n.handoffAckFIFO, hid)
	for len(n.handoffAckFIFO) > handoffAckWindow {
		delete(n.handoffAcks, n.handoffAckFIFO[0])
		n.handoffAckFIFO = n.handoffAckFIFO[1:]
	}
}

// HandleMove serves POST /cluster/move?tenant=&query=&slot=&target= —
// the admin entry point for a planned handoff off this node.
func (n *Node) HandleMove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	slot, err := strconv.Atoi(q.Get("slot"))
	if err != nil {
		http.Error(w, "bad slot", http.StatusBadRequest)
		return
	}
	if err := n.MoveSlot(q.Get("tenant"), q.Get("query"), slot, q.Get("target")); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// failover runs when the detector declares a peer dead: for every
// (query, slot) the dead node owned whose NEW rendezvous owner is this
// node, adopt the slot from the dead node's state directory. Every
// survivor runs the same computation on the same inputs, so the dead
// node's slots partition across survivors with no coordination.
//
// Before adopting anything, the death must be CONFIRMED by a witness:
// in a cluster of three or more, at least one other reachable member
// has to agree the peer is down, and no reachable member may still see
// it up. An asymmetric partition (we lost our link to the peer, the
// rest of the cluster didn't) therefore never triggers a takeover —
// adopting a live node's shards while it is still serving them is the
// dueling-failover split brain. While the peer stays down unconfirmed,
// this loop re-checks; routing simply degrades in the meantime.
func (n *Node) failover(dead string) {
	for !n.confirmDeath(dead) {
		t := time.NewTimer(50 * time.Millisecond)
		select {
		case <-n.done:
			t.Stop()
			return
		case <-t.C:
		}
		if !n.place.IsDown(dead) {
			return // it came back; nothing to adopt
		}
	}
	if !n.place.IsDown(dead) {
		return
	}
	n.moveMu.Lock()
	defer n.moveMu.Unlock()
	deadSpec, ok := n.topology().Find(dead)
	if !ok {
		return
	}
	adopted := 0
	for _, in := range n.reg.ActiveInstances() {
		fp := in.Fingerprint()
		for slot := 0; slot < in.NumSlots(); slot++ {
			before, _ := n.place.OwnerIfUp(fp, slot, dead)
			if before != dead {
				continue
			}
			after, ok := n.place.Owner(fp, slot)
			if !ok || after != n.cfg.Self {
				continue
			}
			if err := n.takeover(in, deadSpec, slot); err != nil {
				n.cfg.Logf("cluster: takeover %s slot %d from %s: %v", in.Spec().ID(), slot, dead, err)
				continue
			}
			adopted++
		}
	}
	if adopted > 0 {
		n.cfg.Logf("cluster: adopted %d slots from dead peer %s", adopted, dead)
		n.pushPlacement()
	}
}

// takeover adopts one slot from a dead peer's state directory (shared
// filesystem). Sequence of operations, ordered for crash safety:
//
//  1. Load the dead node's snapshot + WAL tail for the slot. This is
//     everything the dead node made durable; whatever sat unflushed in
//     its WAL buffer (≤ one flush group) is the loss bound.
//  2. ImportShard locally: restore the snapshot, replay the tail with
//     match suppression (M records mark matches the dead node already
//     DELIVERED — flush-before-deliver guarantees every delivered
//     match has a flushed record — so replay completes their partial
//     matches without re-emitting them), take a durable snapshot, then
//     emit only the matches the dead node never delivered.
//  3. Write the ceded tombstone into the dead node's directory. Only
//     after our snapshot: the tombstone tells the rebooting node to
//     discard those files, so it must never exist while ours is the
//     only volatile copy.
func (n *Node) takeover(in *registry.Instance, dead NodeSpec, slot int) error {
	h := &checkpoint.Handoff{Tenant: in.Spec().Tenant, Query: in.Spec().Name, Shard: slot}
	var dir string
	if dead.StateDir != "" {
		dir = filepath.Join(dead.StateDir, in.StateDirName())
		store, err := checkpoint.NewShardStore(checkpoint.Config{Dir: dir}, slot, in.Runtime().Fingerprint())
		if err != nil {
			return fmt.Errorf("open dead store: %w", err)
		}
		res, err := store.Load()
		store.Abort() // read-only use: close the WAL without writing
		if err != nil {
			return fmt.Errorf("load dead store: %w", err)
		}
		h.State = res.State
		h.Tail = res.Records
		if res.CorruptSnaps > 0 || res.Torn {
			n.cfg.Logf("cluster: takeover %s slot %d: corrupt_snaps=%d torn_wal=%v (expected after SIGKILL)",
				in.Spec().ID(), slot, res.CorruptSnaps, res.Torn)
		}
	}
	maxSeq, hasSeq, err := in.Runtime().ImportShard(h)
	if err != nil {
		return fmt.Errorf("import: %w", err)
	}
	if hasSeq && n.cfg.BumpSeq != nil {
		n.cfg.BumpSeq(maxSeq + 1)
	}
	if dir != "" {
		if err := checkpoint.CedeShard(dir, slot); err != nil {
			n.cfg.Logf("cluster: cede tombstone %s slot %d: %v", in.Spec().ID(), slot, err)
		}
	}
	n.place.SetOverride(SlotKey{FP: in.Fingerprint(), Slot: slot}, n.cfg.Self)
	n.takeovers.Add(1)
	return nil
}

// confirmDeath collects death-confirmation votes for a peer this
// node's detector declared dead. It returns true only when every
// OTHER member it can reach agrees the peer is down AND at least one
// such witness exists. A two-node cluster has no possible witness, so
// the local verdict stands alone there (documented limitation: a
// 2-node asymmetric partition can still duel; epoch fencing bounds
// the damage and converges ownership at heal).
func (n *Node) confirmDeath(dead string) bool {
	var others []NodeSpec
	for _, spec := range n.topology().Nodes {
		if spec.Name != n.cfg.Self && spec.Name != dead {
			others = append(others, spec)
		}
	}
	if len(others) == 0 {
		return true
	}
	witnesses := 0
	for _, spec := range others {
		up, err := n.peerView(spec.Addr, dead)
		if err != nil {
			continue // unreachable: abstains
		}
		if up {
			n.cfg.Logf("cluster: failover of %s vetoed: %s still sees it up", dead, spec.Name)
			return false
		}
		witnesses++
	}
	if witnesses == 0 {
		// Nobody reachable: WE may be the partitioned side. Adopting a
		// possibly-live node's shards on local evidence alone is the
		// split brain this check exists to prevent.
		n.cfg.Logf("cluster: failover of %s deferred: no reachable witness", dead)
		return false
	}
	return true
}

// peerView asks one member for its detector's view of a third node.
func (n *Node) peerView(addr, peer string) (up bool, err error) {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/cluster/peerview?peer="+urlEscape(peer), nil)
	if err != nil {
		return false, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("peerview: %s", resp.Status)
	}
	var v struct {
		Up bool `json:"up"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&v); err != nil {
		return false, err
	}
	return v.Up, nil
}

// WaitQuiesce blocks until the forward queues and in-transit handoffs
// drain (or the timeout elapses) — the conservation tests' barrier.
func (n *Node) WaitQuiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.inFlight.Load() == 0 {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return n.inFlight.Load() == 0
}
