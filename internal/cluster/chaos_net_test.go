package cluster

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/fault"
	"cepshed/internal/runtime"
)

// Network chaos matrix: every scenario injects faults through
// fault.NetChaos (one injector per node, so partitions can be
// asymmetric), then ends with the cluster conservation audit — no
// scenario may lose an event silently, whatever the network did.

func hostOf(tn *tcNode) string { return strings.TrimPrefix(tn.srv.URL, "http://") }

// netChaosFleet builds one NetChaos per node name and the transport
// factory the harness wants.
func netChaosFleet(names []string) (map[string]*fault.NetChaos, func(string) http.RoundTripper) {
	ncs := map[string]*fault.NetChaos{}
	for i, name := range names {
		ncs[name] = fault.NewNetChaos(int64(i+1), nil)
	}
	return ncs, func(name string) http.RoundTripper { return ncs[name] }
}

func fastRetries() tcOpts {
	return tcOpts{
		forwardRetries: 4,
		retryPolicy:    runtime.RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond},
	}
}

// requireConserved runs the cluster audit from `from` (healing first is
// the caller's job) and fails on any conservation violation.
func requireConserved(t *testing.T, from *tcNode, wantDoubles bool) AuditReport {
	t.Helper()
	rep := from.node.AuditCluster()
	if rep.SilentLoss != 0 {
		t.Errorf("audit: silent loss of %d pairs (problems: %v)", rep.SilentLoss, rep.Problems)
	}
	if !wantDoubles && rep.DoubleAccounted != 0 {
		t.Errorf("audit: %d double-accounted pairs, want 0 (problems: %v)", rep.DoubleAccounted, rep.Problems)
	}
	if !rep.OK {
		t.Errorf("audit not OK: %v", rep.Problems)
	}
	if len(rep.Unreachable) != 0 {
		t.Errorf("audit ran partial after heal: unreachable %v", rep.Unreachable)
	}
	return rep
}

// The ambiguous fault: a forward batch IS delivered but its ack is
// dropped. The sender must retry (same peer, same batch ID) and the
// receiver must dedup the retry — without batch IDs this scenario
// double-delivers every dropped-ack batch.
func TestChaosNetRetriedForwardDedup(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	ncs, transport := netChaosFleet(names)
	opts := fastRetries()
	opts.transport = transport
	col := newMatchCollector()
	nodes := newTestClusterOpts(t, names, 8, col, slowDetector(), opts)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]

	// Arm two drop-after-sends per outbound link from n1. At most one
	// non-forward request (the startup placement pull) can race onto a
	// link, so at least one armed drop lands on a forward batch.
	ncs["n1"].DropAfterSend(hostOf(n2), 2)
	ncs["n1"].DropAfterSend(hostOf(n3), 2)

	ids := make([]int64, 30)
	for i := range ids {
		ids[i] = int64(i)
	}
	res := n1.node.OfferBatch(abcEvents(ids, "A", "B", "C"))
	if res.DroppedPairs != 0 || res.ShedPairs != 0 {
		t.Fatalf("healthy-path offer dropped %d / shed %d pairs", res.DroppedPairs, res.ShedPairs)
	}
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("forward queues never quiesced")
	}
	drainQueues(t, n1, n2, n3)

	// Every id matches exactly once — the retried batches were deduped,
	// not double-delivered.
	waitMatches(t, col, len(ids))
	if total, dups := col.counts(); total != len(ids) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0", total, dups, len(ids))
	}
	if got := n1.node.Status().Retries; got == 0 {
		t.Error("sender recorded no forward retries despite dropped acks")
	}
	if dup := n2.node.Status().DupBatches + n3.node.Status().DupBatches; dup == 0 {
		t.Error("no receiver deduped a retried batch — the retry was either lost or double-delivered")
	}
	if drops := n1.node.Status().ForwardDrop; drops != 0 {
		t.Errorf("router dropped %d pairs; retries should have delivered everything", drops)
	}

	ncs["n1"].Heal()
	rep := requireConserved(t, n1, false)
	if !rep.EngineExact {
		t.Error("engine tier should be exact: no node replayed or imported anything")
	}
	if rep.EdgePairs != uint64(len(ids)*3) {
		t.Errorf("audit edge pairs = %d, want %d", rep.EdgePairs, len(ids)*3)
	}
}

// A full two-way partition between the ingest node and one owner:
// retries exhaust and the affected pairs become loud, counted router
// drops (never silent loss, never a stall). After the heal, new
// traffic flows and the cluster-wide ledger still balances.
func TestChaosNetPartitionSteadyState(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	ncs, transport := netChaosFleet(names)
	opts := tcOpts{
		transport:      transport,
		forwardRetries: 1,
		retryPolicy:    runtime.RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond},
	}
	col := newMatchCollector()
	nodes := newTestClusterOpts(t, names, 8, col, slowDetector(), opts)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	fp := n1.in.Fingerprint()

	ownerOf := func(id int64) string {
		probe := event.New("A", 0, map[string]event.Value{"ID": event.Int(id), "V": event.Int(1)})
		owner, _ := n1.node.Placement().Owner(fp, n1.in.ShardSlot(probe))
		return owner
	}

	// Phase 1, healthy: everything delivers.
	ids1 := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	n1.node.OfferBatch(abcEvents(ids1, "A", "B", "C"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("phase 1 never quiesced")
	}

	// Phase 2: hard partition n1 ↔ n2 (both directions), detector too
	// slow to react — the forwarder has to discover it the hard way.
	ncs["n1"].Block(hostOf(n2))
	ncs["n2"].Block(hostOf(n1))
	ids2 := []int64{100, 101, 102, 103, 104, 105, 106, 107, 108, 109}
	lost := 0
	for _, id := range ids2 {
		if ownerOf(id) == "n2" {
			lost++
		}
	}
	n1.node.OfferBatch(abcEvents(ids2, "A", "B", "C"))
	if !n1.node.WaitQuiesce(30 * time.Second) {
		t.Fatal("phase 2 never quiesced — a partitioned link must drop, not stall")
	}
	if lost > 0 {
		if got := n1.node.Status().ForwardDrop; got != uint64(lost*3) {
			t.Errorf("router_dropped = %d, want %d (3 events × %d n2-owned ids)", got, lost*3, lost)
		}
		// The per-peer breakdown must attribute every drop to the n2 link.
		var n2drops uint64
		for _, pf := range n1.node.Status().PeerForwards {
			if pf.Name == "n2" {
				n2drops = pf.Dropped
			}
		}
		if n2drops != uint64(lost*3) {
			t.Errorf("per-peer dropped[n2] = %d, want %d", n2drops, lost*3)
		}
	}

	// Phase 3: heal, then new traffic flows everywhere again.
	ncs["n1"].Heal()
	ncs["n2"].Heal()
	ids3 := []int64{200, 201, 202, 203, 204, 205, 206, 207, 208, 209}
	n1.node.OfferBatch(abcEvents(ids3, "A", "B", "C"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("post-heal traffic never quiesced")
	}
	drainQueues(t, n1, n2, n3)

	want := len(ids1) + len(ids2) - lost + len(ids3)
	waitMatches(t, col, want)
	if total, dups := col.counts(); total != want || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0", total, dups, want)
	}
	// Blocked-before-send drops can never double-account: nothing was
	// delivered on those attempts.
	rep := requireConserved(t, n1, false)
	if rep.RouterDropped != uint64(lost*3) {
		t.Errorf("audit router_dropped = %d, want %d", rep.RouterDropped, lost*3)
	}
}

// The handoff ack is dropped after the import lands: the source must
// retry the ship under the same handoff ID and the target must replay
// the recorded ack instead of importing twice — the dropped-ack
// handoff is exactly the split-brain the hid closes.
func TestChaosNetPartitionDuringHandoff(t *testing.T) {
	names := []string{"n1", "n2"}
	ncs, transport := netChaosFleet(names)
	opts := fastRetries()
	opts.transport = transport
	col := newMatchCollector()
	nodes := newTestClusterOpts(t, names, 4, col, slowDetector(), opts)

	fp := nodes["n1"].in.Fingerprint()
	ownerName, _ := nodes["n1"].node.Placement().Owner(fp, 0)
	src := nodes[ownerName]
	var dst *tcNode
	for name, tn := range nodes {
		if name != ownerName {
			dst = tn
		}
	}
	idsFor := func(slot, count int) []int64 {
		var ids []int64
		for id := int64(0); len(ids) < count; id++ {
			probe := event.New("A", 0, map[string]event.Value{"ID": event.Int(id), "V": event.Int(1)})
			if src.in.ShardSlot(probe) == slot {
				ids = append(ids, id)
			}
		}
		return ids
	}

	ids := idsFor(0, 8)
	src.node.OfferBatch(abcEvents(ids, "A", "B"))
	drainQueues(t, src)

	// The ship is delivered, the ack is dropped; the retried ship must
	// be answered from the ack window, not re-imported.
	ncs[src.name].DropAfterSend(hostOf(dst), 1)
	spec := src.in.Spec()
	if err := src.node.MoveSlot(spec.Tenant, spec.Name, 0, dst.name); err != nil {
		t.Fatalf("MoveSlot under dropped ack: %v", err)
	}
	if got := src.node.Status().HandoffsOut; got != 1 {
		t.Fatalf("handoffs_out = %d, want 1", got)
	}
	if got := dst.node.Status().HandoffsIn; got != 1 {
		t.Fatalf("handoffs_in = %d, want 1 — the retried ship must NOT import twice", got)
	}
	// Both ends agree on the new owner AND its fencing epoch.
	se, de := src.node.Placement().Epoch(fp, 0), dst.node.Placement().Epoch(fp, 0)
	if se == 0 || se != de {
		t.Fatalf("epochs diverge after handoff: src=%d dst=%d, want equal and > 0", se, de)
	}
	for _, tn := range nodes {
		if owner, _ := tn.node.Placement().Owner(fp, 0); owner != dst.name {
			t.Fatalf("%s sees owner %s, want %s", tn.name, owner, dst.name)
		}
	}

	// Completing events still ingested at the source forward to the
	// target and finish the migrated partial matches exactly once.
	src.node.OfferBatch(abcEvents(ids, "C"))
	if !src.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("forward queue never quiesced")
	}
	drainQueues(t, dst)
	waitMatches(t, col, len(ids))
	if total, dups := col.counts(); total != len(ids) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0", total, dups, len(ids))
	}

	// Second act: a fully blocked target. The move must fail loudly and
	// leave the source authoritative and serving.
	slot2, ids2 := -1, []int64(nil)
	for s := 1; s < 4 && slot2 < 0; s++ {
		if owner, _ := src.node.Placement().Owner(fp, s); owner == src.name {
			slot2 = s
		}
	}
	if slot2 < 0 {
		t.Fatal("source owns no other slot; widen the shard count")
	}
	ids2 = idsFor(slot2, 6)
	src.node.OfferBatch(abcEvents(ids2, "A", "B"))
	drainQueues(t, src)
	ncs[src.name].Block(hostOf(dst))
	if err := src.node.MoveSlot(spec.Tenant, spec.Name, slot2, dst.name); err == nil {
		t.Fatal("MoveSlot succeeded across a blocked link")
	}
	if st := src.node.Status(); st.HandoffFailed != 1 || st.InFlight != 0 {
		t.Fatalf("after blocked handoff: failed=%d in_flight=%d, want 1/0", st.HandoffFailed, st.InFlight)
	}
	if owner, _ := src.node.Placement().Owner(fp, slot2); owner != src.name {
		t.Fatalf("ownership left the source (%s) despite the failed ship", owner)
	}
	ncs[src.name].Heal()
	src.node.OfferBatch(abcEvents(ids2, "C"))
	drainQueues(t, src)
	waitMatches(t, col, len(ids)+len(ids2))
	if total, dups := col.counts(); total != len(ids)+len(ids2) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0", total, dups, len(ids)+len(ids2))
	}
	requireConserved(t, src, false)
}

// An asymmetric partition — n1 loses its link TO n2 while every other
// link works — must not trigger a failover: n3 still sees n2 alive and
// vetoes n1's takeover. A flapping link additionally lands n2 in n1's
// flap quarantine instead of thrashing ownership. Nothing moves, so
// every placement stays epoch-converged throughout.
func TestDetectorAsymmetricPartition(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	ncs, transport := netChaosFleet(names)
	opts := fastRetries()
	opts.transport = transport
	det := DetectorConfig{
		Interval:      5 * time.Millisecond,
		Misses:        3,
		Policy:        runtime.RestartPolicy{BackoffBase: 2 * time.Millisecond, BackoffMax: 10 * time.Millisecond},
		FlapDeaths:    3,
		FlapWindow:    time.Minute,
		QuarantineFor: 150 * time.Millisecond,
		Seed:          1,
	}
	col := newMatchCollector()
	nodes := newTestClusterOpts(t, names, 8, col, det, opts)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]

	waitCond := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	takeovers := func() uint64 {
		return n1.node.Status().Takeovers + n2.node.Status().Takeovers + n3.node.Status().Takeovers
	}

	// One-way partition: n1 cannot reach n2; n2 and n3 are fine.
	ncs["n1"].Block(hostOf(n2))
	waitCond("n1 to declare n2 down", func() bool { return n1.node.Placement().IsDown("n2") })

	// n1 keeps trying to fail n2 over; n3's witness vote vetoes it every
	// 50ms. Give the veto loop plenty of chances to get it wrong.
	time.Sleep(300 * time.Millisecond)
	if got := takeovers(); got != 0 {
		t.Fatalf("asymmetric partition caused %d takeovers — dueling failover", got)
	}
	if n2.node.Placement().IsDown("n1") || n3.node.Placement().IsDown("n2") {
		t.Fatal("healthy links flipped down — the partition should be n1→n2 only")
	}

	// Ingest at n1 mid-partition: its degraded view re-routes or drops
	// n2's pairs; either way nothing is lost silently (audited below).
	midIDs := []int64{500, 501, 502, 503, 504, 505}
	n1.node.OfferBatch(abcEvents(midIDs, "A", "B", "C"))
	if !n1.node.WaitQuiesce(30 * time.Second) {
		t.Fatal("mid-partition ingest never quiesced")
	}

	// Flap the link: two more down transitions within the window push
	// n2 into n1's flap quarantine.
	for i := 0; i < 2; i++ {
		ncs["n1"].Unblock(hostOf(n2))
		waitCond("n1 to see n2 back up", func() bool { return !n1.node.Placement().IsDown("n2") })
		ncs["n1"].Block(hostOf(n2))
		waitCond("n1 to see n2 down again", func() bool { return n1.node.Placement().IsDown("n2") })
	}
	quarantined := func() bool {
		for _, p := range n1.node.Status().Peers {
			if p.Name == "n2" {
				return p.Quarantined
			}
		}
		return false
	}
	if !quarantined() {
		t.Error("three deaths inside the flap window did not quarantine n2 in n1's view")
	}

	// Heal. The quarantine holds n2 "down" in n1's view until it
	// expires, still without takeovers; then the view converges.
	ncs["n1"].Heal()
	waitCond("quarantine to expire and n2 to revive", func() bool { return !n1.node.Placement().IsDown("n2") })
	if got := takeovers(); got != 0 {
		t.Fatalf("%d takeovers during flap/quarantine — ownership must not thrash", got)
	}

	// Nothing ever moved, so every node's override map is empty and all
	// epochs sit at zero — converged by construction, and the audit
	// balances the mid-partition ingest.
	for _, tn := range []*tcNode{n1, n2, n3} {
		if _, ovs := tn.node.Placement().Overrides(); len(ovs) != 0 {
			t.Errorf("%s recorded %d overrides; none should exist", tn.name, len(ovs))
		}
	}
	drainQueues(t, n1, n2, n3)
	if _, dups := col.counts(); dups != 0 {
		t.Errorf("%d duplicate matches — split-brain processing", dups)
	}
	requireConserved(t, n1, false)
}

// A fully isolated node must not fail anyone over (no reachable
// witness), while the majority side confirms the death among
// themselves, adopts the isolated node's slots with bumped epochs, and
// keeps serving. At heal, the minority adopts the majority's
// higher-epoch overrides — convergence, not a duel.
func TestChaosNetPartitionDuringFailover(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	ncs, transport := netChaosFleet(names)
	opts := fastRetries()
	opts.transport = transport
	col := newMatchCollector()
	nodes := newTestClusterOpts(t, names, 8, col, fastDetectorConfig(), opts)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	fp := n1.in.Fingerprint()

	var n2slots []int
	for slot := 0; slot < 8; slot++ {
		if owner, _ := n1.node.Placement().Owner(fp, slot); owner == "n2" {
			n2slots = append(n2slots, slot)
		}
	}
	if len(n2slots) == 0 {
		t.Fatal("rendezvous gave n2 zero slots")
	}

	// Seed partial matches everywhere, n2 included, while healthy.
	ids := make([]int64, 24)
	for i := range ids {
		ids[i] = int64(i)
	}
	n1.node.OfferBatch(abcEvents(ids, "A", "B"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("seeding never quiesced")
	}
	drainQueues(t, n1, n2, n3)

	// Isolate n2 completely (both directions on every link).
	ncs["n1"].Block(hostOf(n2))
	ncs["n3"].Block(hostOf(n2))
	ncs["n2"].Block(hostOf(n1), hostOf(n3))

	// Majority side: n1 and n3 confirm the death with each other and
	// split n2's slots.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if n1.node.Status().Takeovers+n3.node.Status().Takeovers == uint64(len(n2slots)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("majority takeover stalled: %d+%d of %d slots",
				n1.node.Status().Takeovers, n3.node.Status().Takeovers, len(n2slots))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Minority side: n2 sees BOTH peers down but can reach no witness —
	// it must adopt nothing.
	time.Sleep(200 * time.Millisecond)
	if got := n2.node.Status().Takeovers; got != 0 {
		t.Fatalf("isolated n2 performed %d takeovers — dueling failover", got)
	}
	for _, slot := range n2slots {
		o1, _ := n1.node.Placement().Owner(fp, slot)
		o3, _ := n3.node.Placement().Owner(fp, slot)
		if o1 != o3 || o1 == "n2" {
			t.Fatalf("slot %d: majority owners diverge (%s vs %s)", slot, o1, o3)
		}
		if e := n1.node.Placement().Epoch(fp, slot); e == 0 {
			t.Fatalf("slot %d adopted without an epoch bump", slot)
		}
	}

	// Completing events ingested on the majority side finish every
	// partial match — including those adopted from n2 — exactly once.
	n1.node.OfferBatch(abcEvents(ids, "C"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("completion batch never quiesced")
	}
	drainQueues(t, n1, n3)
	waitMatches(t, col, len(ids))
	if total, dups := col.counts(); total != len(ids) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0", total, dups, len(ids))
	}

	// Heal. The survivors push their placement to the revived n2, whose
	// zero-epoch view loses to every bumped override.
	for _, nc := range ncs {
		nc.Heal()
	}
	converged := func() bool {
		for _, slot := range n2slots {
			o1, _ := n1.node.Placement().Owner(fp, slot)
			o2, _ := n2.node.Placement().Owner(fp, slot)
			if o1 != o2 || n1.node.Placement().Epoch(fp, slot) != n2.node.Placement().Epoch(fp, slot) {
				return false
			}
		}
		return !n1.node.Placement().IsDown("n2") && !n2.node.Placement().IsDown("n1") &&
			!n2.node.Placement().IsDown("n3") && !n3.node.Placement().IsDown("n2")
	}
	deadline = time.Now().Add(15 * time.Second)
	for !converged() {
		if time.Now().After(deadline) {
			t.Fatal("placement never converged after the heal")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The audit tolerates double accounting up to the counted router
	// drops (delivered-but-unacked batches that later dropped), but
	// silent loss is still zero.
	rep := requireConserved(t, n1, true)
	if rep.DoubleAccounted > rep.RouterDropped {
		t.Errorf("double accounting %d exceeds router drops %d", rep.DoubleAccounted, rep.RouterDropped)
	}
}

// Topology reload mid-stream: adding a node pins every slot to its
// incumbent owner (no silent reshuffle), the newcomer starts cold, and
// a planned MoveSlot is what hands it work — all without restarting
// the incumbents or dropping a single pair.
func TestTopologyReloadAddNodeMidStream(t *testing.T) {
	names := []string{"n1", "n2", "n3"}
	opts := fastRetries()
	opts.topoNames = map[string][]string{
		"n1": {"n1", "n2"},
		"n2": {"n1", "n2"},
		"n3": {"n1", "n2", "n3"}, // the joiner boots already knowing the new map
	}
	opts.deferStart = map[string]bool{"n3": true}
	col := newMatchCollector()
	nodes := newTestClusterOpts(t, names, 8, col, slowDetector(), opts)
	n1, n2, n3 := nodes["n1"], nodes["n2"], nodes["n3"]
	fp := n1.in.Fingerprint()

	// Mid-stream state on the 2-node cluster.
	ids := make([]int64, 16)
	for i := range ids {
		ids[i] = int64(i)
	}
	n1.node.OfferBatch(abcEvents(ids, "A", "B"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("seeding never quiesced")
	}
	drainQueues(t, n1, n2)

	before := map[int]string{}
	for slot := 0; slot < 8; slot++ {
		before[slot], _ = n1.node.Placement().Owner(fp, slot)
	}

	// Reload the incumbents to the 3-node topology. Removing self must
	// be refused; growing must pin all ownership in place.
	if err := n1.node.ReloadTopology(Topology{Nodes: n1.top.Nodes[1:]}); err == nil {
		t.Fatal("ReloadTopology accepted a topology without self")
	}
	if err := n1.node.ReloadTopology(n1.top); err != nil {
		t.Fatalf("n1 reload: %v", err)
	}
	if err := n2.node.ReloadTopology(n2.top); err != nil {
		t.Fatalf("n2 reload: %v", err)
	}
	if got := n1.node.Placement().Members(); len(got) != 3 {
		t.Fatalf("members after reload = %v, want 3", got)
	}
	for slot := 0; slot < 8; slot++ {
		if owner, _ := n1.node.Placement().Owner(fp, slot); owner != before[slot] {
			t.Fatalf("slot %d owner changed %s → %s on reload — adding a node must not reshuffle", slot, before[slot], owner)
		}
	}

	// Start the joiner; its placement pull adopts the pins.
	n3.node.Start()
	deadline := time.Now().Add(15 * time.Second)
	for {
		agree := true
		for slot := 0; slot < 8; slot++ {
			o3, _ := n3.node.Placement().Owner(fp, slot)
			if o3 != before[slot] {
				agree = false
				break
			}
		}
		if agree {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("joiner never adopted the ownership pins")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Completing events still land on the incumbents; the cold joiner
	// gets nothing it has no state for.
	n1.node.OfferBatch(abcEvents(ids, "C"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("completion batch never quiesced")
	}
	drainQueues(t, n1, n2)
	waitMatches(t, col, len(ids))
	if got := n3.node.Status().ForwardedIn; got != 0 {
		t.Errorf("joiner received %d forwarded pairs before any slot moved to it", got)
	}

	// Now hand the joiner a slot the proper way and stream through it.
	slot := -1
	for s := 0; s < 8; s++ {
		if before[s] == "n1" {
			slot = s
			break
		}
	}
	if slot < 0 {
		t.Fatal("n1 owns nothing to move")
	}
	spec := n1.in.Spec()
	if err := n1.node.MoveSlot(spec.Tenant, spec.Name, slot, "n3"); err != nil {
		t.Fatalf("MoveSlot to joiner: %v", err)
	}
	var ids2 []int64
	for id := int64(1000); len(ids2) < 6; id++ {
		probe := event.New("A", 0, map[string]event.Value{"ID": event.Int(id), "V": event.Int(1)})
		if n1.in.ShardSlot(probe) == slot {
			ids2 = append(ids2, id)
		}
	}
	n1.node.OfferBatch(abcEvents(ids2, "A", "B", "C"))
	if !n1.node.WaitQuiesce(10 * time.Second) {
		t.Fatal("joiner traffic never quiesced")
	}
	drainQueues(t, n1, n2, n3)
	waitMatches(t, col, len(ids)+len(ids2))
	if total, dups := col.counts(); total != len(ids)+len(ids2) || dups != 0 {
		t.Errorf("matches = %d (dups %d), want %d/0", total, dups, len(ids)+len(ids2))
	}
	if got := n3.node.Status().ForwardedIn; got == 0 {
		t.Error("joiner still received nothing after MoveSlot")
	}
	requireConserved(t, n1, false)
}
