package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"cepshed/internal/runtime"
)

// fakeProbe is a switchable heartbeat target.
type fakeProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (f *fakeProbe) set(name string, failing bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail == nil {
		f.fail = map[string]bool{}
	}
	f.fail[name] = failing
}

func (f *fakeProbe) probe(spec NodeSpec) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail[spec.Name] {
		return errors.New("probe refused")
	}
	return nil
}

// transitions records OnDown/OnUp events on channels the test selects on.
type transitions struct {
	down chan string
	up   chan string
}

func newTransitions() *transitions {
	return &transitions{down: make(chan string, 16), up: make(chan string, 16)}
}

func waitEvent(t *testing.T, ch chan string, what string) string {
	t.Helper()
	select {
	case name := <-ch:
		return name
	case <-time.After(5 * time.Second):
		t.Fatalf("no %s event within 5s", what)
		return ""
	}
}

func fastDetector(p *fakeProbe, tr *transitions, cfg DetectorConfig) *Detector {
	cfg.Interval = 2 * time.Millisecond
	cfg.Misses = 2
	cfg.Probe = p.probe
	cfg.OnDown = func(n string) { tr.down <- n }
	cfg.OnUp = func(n string) { tr.up <- n }
	cfg.Policy = runtime.RestartPolicy{BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond}
	cfg.Seed = 1
	return NewDetector(cfg, []NodeSpec{{Name: "peer", Addr: "x:1"}})
}

// Misses consecutive failures flip a peer down (exactly one OnDown);
// the first success after that flips it back up.
func TestDetectorDownAfterMissesThenRecovers(t *testing.T) {
	p, tr := &fakeProbe{}, newTransitions()
	// Quarantine thresholds high enough not to trigger here.
	d := fastDetector(p, tr, DetectorConfig{FlapDeaths: 100, FlapWindow: time.Minute})
	d.Start()
	defer d.Close()

	p.set("peer", true)
	if got := waitEvent(t, tr.down, "down"); got != "peer" {
		t.Fatalf("down event for %q", got)
	}
	st := d.Status()
	if len(st) != 1 || st[0].Up {
		t.Fatalf("status after death: %+v, want down", st)
	}

	p.set("peer", false)
	if got := waitEvent(t, tr.up, "up"); got != "peer" {
		t.Fatalf("up event for %q", got)
	}
	select {
	case n := <-tr.down:
		t.Fatalf("spurious extra down event for %q", n)
	case <-time.After(20 * time.Millisecond):
	}
}

// A single failed probe is a miss, not a death.
func TestDetectorToleratesOneMiss(t *testing.T) {
	tr := newTransitions()
	var once sync.Once
	cfg := DetectorConfig{FlapDeaths: 100, FlapWindow: time.Minute}
	cfg.Interval = 2 * time.Millisecond
	cfg.Misses = 3
	cfg.OnDown = func(n string) { tr.down <- n }
	cfg.OnUp = func(n string) { tr.up <- n }
	cfg.Seed = 1
	// Fail exactly one probe, then succeed forever.
	cfg.Probe = func(spec NodeSpec) error {
		var err error
		once.Do(func() { err = errors.New("one blip") })
		return err
	}
	d := NewDetector(cfg, []NodeSpec{{Name: "peer", Addr: "x:1"}})
	d.Start()
	defer d.Close()
	select {
	case <-tr.down:
		t.Fatal("one missed heartbeat declared the peer dead")
	case <-time.After(50 * time.Millisecond):
	}
}

// A peer that dies FlapDeaths times inside FlapWindow is quarantined:
// it stays down for placement even while its heartbeats succeed, and
// OnUp fires only after the quarantine expires.
func TestDetectorQuarantinesFlappingPeer(t *testing.T) {
	p, tr := &fakeProbe{}, newTransitions()
	d := fastDetector(p, tr, DetectorConfig{
		FlapDeaths:    2,
		FlapWindow:    time.Minute,
		QuarantineFor: 150 * time.Millisecond,
	})
	d.Start()
	defer d.Close()

	// First death and recovery: normal.
	p.set("peer", true)
	waitEvent(t, tr.down, "down")
	p.set("peer", false)
	waitEvent(t, tr.up, "up")

	// Second death inside the window: quarantine kicks in.
	p.set("peer", true)
	waitEvent(t, tr.down, "down")
	start := time.Now()
	p.set("peer", false) // heartbeats succeed again immediately...

	// ...but the peer must stay benched: no OnUp while quarantined.
	select {
	case <-tr.up:
		if since := time.Since(start); since < 100*time.Millisecond {
			t.Fatalf("flapping peer revived after %v, inside the 150ms quarantine", since)
		}
	case <-time.After(50 * time.Millisecond):
	}
	st := d.Status()
	if len(st) != 1 || !st[0].Quarantined || st[0].Up {
		t.Fatalf("status during quarantine: %+v, want quarantined+down", st[0])
	}

	// After expiry the next successful probe revives it.
	if got := waitEvent(t, tr.up, "post-quarantine up"); got != "peer" {
		t.Fatalf("up event for %q", got)
	}
	if since := time.Since(start); since < 100*time.Millisecond {
		t.Fatalf("revived after only %v, quarantine was 150ms", since)
	}
}
