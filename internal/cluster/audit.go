package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Cluster-wide conservation audit.
//
// Every (event, query) pair that enters the cluster at some node's
// ingest edge must end in exactly one counted disposition somewhere in
// the cluster: delivered into an engine, rejected at a shard door,
// shed by the arbiter gate, skipped below a recovery floor, shed by
// router admission (at the edge or on receipt), dropped at the router
// (queue overflow, dead peer, retries exhausted), or discarded as an
// undecodable forwarded line. The audit sums each node's ledger and
// checks
//
//	Σ edge_pairs == Σ dispositions + Σ in_flight ± double_accounted
//
// with two tolerances, both one-sided:
//
//   - SilentLoss (edge pairs nobody accounted for) must ALWAYS be 0.
//     Any positive value is a bug: an event vanished without a counter.
//   - DoubleAccounted (dispositions exceeding edge pairs) is bounded by
//     Σ router_dropped_total. It is the price of at-least-once
//     accounting under partitions: a forward can be delivered (counted
//     at the receiver) while its ack is lost, and if every retry also
//     fails the sender eventually counts the same pairs as dropped.
//     The pair is then counted twice — visibly, as a drop that did not
//     actually lose data — never zero times.
//
// The engine tier is checked only when it can be exact: WAL recovery
// replay and handoff imports re-count events a source node already
// counted (by design — each node's identity stays closed), so a
// cluster that restarted or migrated state reports the engine check
// as skipped rather than asserting a stale identity.

// Ledger is one node's slice of the cluster conservation state. Router
// tier counters come from the Node; engine tier counters from the
// registry snapshot. Evaluate is a pure function over ledgers, so a
// test can include a dead node's last pre-kill ledger.
type Ledger struct {
	Node string `json:"node"`

	// Router tier: pair creation and terminal dispositions.
	EdgePairs     uint64 `json:"edge_pairs"`
	EdgeShed      uint64 `json:"edge_shed"`
	RecvShed      uint64 `json:"recv_shed"`
	RecvBadLines  uint64 `json:"recv_bad_lines"`
	RouterDropped uint64 `json:"router_dropped"`
	Delivered     uint64 `json:"delivered"`
	DoorRejected  uint64 `json:"door_rejected"`
	ArbiterShed   uint64 `json:"arbiter_shed"`
	FloorSkipped  uint64 `json:"floor_skipped"`
	Unrouted      uint64 `json:"unrouted"`
	InFlight      int64  `json:"in_flight"`

	// Link accounting (informative; dup acks make the out/in delta
	// legitimately nonzero).
	ForwardedOut  uint64 `json:"forwarded_out"`
	ForwardedIn   uint64 `json:"forwarded_in"`
	RedirectLocal uint64 `json:"redirect_local"`
	DupBatches    uint64 `json:"dup_batches"`
	Retries       uint64 `json:"retries"`

	// Engine tier, from the registry snapshot. EngineQuarantined is the
	// shard-level quarantine sum (the exact conservation term), not the
	// dead-letter total. QueueDepth is delivered-but-not-yet-consumed.
	EngineIn          uint64 `json:"engine_in"`
	Processed         uint64 `json:"processed"`
	Shed              uint64 `json:"shed"`
	EngineQuarantined uint64 `json:"engine_quarantined"`
	QueueDepth        int    `json:"queue_depth"`
	Matches           uint64 `json:"matches"`

	// Exactness gates: nonzero values mean this node's engine counters
	// include re-counted events (recovery replay, handoff import, or a
	// failover takeover importing a dead peer's durable state).
	WALReplayed uint64 `json:"wal_replayed"`
	HandoffsIn  uint64 `json:"handoffs_in"`
	Takeovers   uint64 `json:"takeovers"`
}

// LocalLedger snapshots this node's conservation ledger.
func (n *Node) LocalLedger() Ledger {
	snap := n.reg.Snapshot()
	l := Ledger{
		Node:          n.cfg.Self,
		EdgePairs:     n.edgePairs.Load(),
		EdgeShed:      n.edgeShed.Load(),
		RecvShed:      n.recvShed.Load(),
		RecvBadLines:  n.recvBadLines.Load(),
		RouterDropped: n.forwardDrop.Load(),
		Delivered:     n.delivered.Load(),
		DoorRejected:  n.doorRejected.Load(),
		ArbiterShed:   n.arbiterShed.Load(),
		FloorSkipped:  n.floorSkipped.Load(),
		Unrouted:      n.unroutedPairs.Load(),
		InFlight:      n.inFlight.Load(),
		ForwardedOut:  n.forwardedOut.Load(),
		ForwardedIn:   n.forwardedIn.Load(),
		RedirectLocal: n.redirectLocal.Load(),
		DupBatches:    n.dupBatches.Load(),
		Retries:       n.retriesTotal.Load(),
		EngineIn:      snap.EventsIn,
		Processed:     snap.EventsProcessed,
		Shed:          snap.EventsShed,
		Matches:       snap.Matches,
		WALReplayed:   snap.WALReplayed,
		HandoffsIn:    n.handoffsIn.Load(),
		Takeovers:     n.takeovers.Load(),
	}
	for _, q := range snap.Queries {
		l.EngineQuarantined += q.Runtime.ShardQuarantined
		for _, sh := range q.Runtime.Shards {
			l.QueueDepth += sh.QueueDepth
		}
	}
	return l
}

// AuditReport is the evaluated cluster conservation state.
type AuditReport struct {
	Nodes       []Ledger `json:"nodes"`
	Unreachable []string `json:"unreachable,omitempty"`
	// Partial marks a report missing at least one node's ledger: its
	// sums cover only the reachable side, so OK is forced false.
	Partial bool `json:"partial"`

	// Cluster sums and the conservation verdict.
	EdgePairs       uint64 `json:"edge_pairs"`
	Disposed        uint64 `json:"disposed"`
	InFlight        int64  `json:"in_flight"`
	SilentLoss      uint64 `json:"silent_loss"`
	DoubleAccounted uint64 `json:"double_accounted"`
	RouterDropped   uint64 `json:"router_dropped"`

	// LinkDelta = Σ forwarded_out − Σ (forwarded_in + recv_shed +
	// recv_bad_lines). Positive residue is explained by dup-batch acks;
	// negative by delivered-but-unacked batches still being retried (or
	// eventually dropped). Informative, not a verdict input.
	LinkDelta int64 `json:"link_delta"`

	// EngineExact reports whether the engine-tier identity could be
	// asserted (no node replayed a WAL or imported a handoff).
	EngineExact bool     `json:"engine_exact"`
	Problems    []string `json:"problems,omitempty"`
	OK          bool     `json:"ok"`
}

// Evaluate folds node ledgers into a conservation verdict. It is pure:
// callers choose the ledger set (live fan-out, or live + a dead node's
// last known ledger in tests).
func Evaluate(ledgers []Ledger, unreachable []string) AuditReport {
	rep := AuditReport{
		Nodes:       ledgers,
		Unreachable: append([]string(nil), unreachable...),
		Partial:     len(unreachable) > 0,
		EngineExact: true,
	}
	var fwdOut, fwdRecv uint64
	for _, l := range ledgers {
		rep.EdgePairs += l.EdgePairs
		rep.Disposed += l.Delivered + l.DoorRejected + l.ArbiterShed + l.FloorSkipped +
			l.EdgeShed + l.RecvShed + l.RecvBadLines + l.RouterDropped
		rep.InFlight += l.InFlight
		rep.RouterDropped += l.RouterDropped
		fwdOut += l.ForwardedOut
		fwdRecv += l.ForwardedIn + l.RecvShed + l.RecvBadLines
		if l.WALReplayed > 0 || l.HandoffsIn > 0 || l.Takeovers > 0 {
			rep.EngineExact = false
		}
	}
	rep.LinkDelta = int64(fwdOut) - int64(fwdRecv)

	accounted := rep.Disposed + uint64(max64(rep.InFlight, 0))
	if rep.EdgePairs > accounted {
		rep.SilentLoss = rep.EdgePairs - accounted
	} else {
		rep.DoubleAccounted = accounted - rep.EdgePairs
	}
	if rep.SilentLoss > 0 {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("silent loss: %d pairs entered the cluster and were never accounted for", rep.SilentLoss))
	}
	if rep.DoubleAccounted > rep.RouterDropped {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("double accounting %d exceeds the router-drop allowance %d",
				rep.DoubleAccounted, rep.RouterDropped))
	}
	if rep.EngineExact {
		for _, l := range ledgers {
			// Delivered pairs either entered the engine loop or still sit
			// in a shard queue.
			if l.Delivered != l.EngineIn+uint64(l.QueueDepth) {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("%s: delivered %d != engine_in %d + queue_depth %d",
						l.Node, l.Delivered, l.EngineIn, l.QueueDepth))
			}
			if l.EngineIn != l.Processed+l.Shed+l.EngineQuarantined {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("%s: engine_in %d != processed %d + shed %d + quarantined %d",
						l.Node, l.EngineIn, l.Processed, l.Shed, l.EngineQuarantined))
			}
		}
	}
	if rep.Partial {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("partial audit: %d node(s) unreachable", len(rep.Unreachable)))
	}
	rep.OK = len(rep.Problems) == 0
	return rep
}

// AuditCluster fans out to every peer for its local ledger, merges the
// results (plus any extra ledgers the caller supplies, e.g. a dead
// node's last snapshot), and evaluates. Unreachable peers are listed
// and mark the report partial.
func (n *Node) AuditCluster(extra ...Ledger) AuditReport {
	ledgers := []Ledger{n.LocalLedger()}
	ledgers = append(ledgers, extra...)
	have := map[string]bool{}
	for _, l := range ledgers {
		have[l.Node] = true
	}
	var unreachable []string
	for _, pl := range n.peerLinks() {
		if have[pl.spec.Name] {
			continue
		}
		l, err := n.fetchLedger(pl.spec.Addr)
		if err != nil {
			unreachable = append(unreachable, pl.spec.Name)
			continue
		}
		ledgers = append(ledgers, l)
	}
	sort.Slice(ledgers, func(i, j int) bool { return ledgers[i].Node < ledgers[j].Node })
	sort.Strings(unreachable)
	return Evaluate(ledgers, unreachable)
}

func (n *Node) fetchLedger(addr string) (Ledger, error) {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/cluster/audit?scope=local", nil)
	if err != nil {
		return Ledger{}, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return Ledger{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return Ledger{}, fmt.Errorf("audit: %s", resp.Status)
	}
	var l Ledger
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&l); err != nil {
		return Ledger{}, err
	}
	return l, nil
}

// HandleAudit serves GET /cluster/audit. ?scope=local returns just
// this node's ledger (the peer fan-out leaf); the default evaluates
// the whole cluster.
func (n *Node) HandleAudit(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if r.URL.Query().Get("scope") == "local" {
		enc.Encode(n.LocalLedger())
		return
	}
	enc.Encode(n.AuditCluster())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
