package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cepshed/internal/event"
	"cepshed/internal/runtime"
)

// FuzzForwardDecode hammers the forward-frame decoder — the one parser
// on the cluster's hot network boundary that reads bytes a (possibly
// confused) peer sent. It must never panic, never allocate off a lying
// Count, and anything it does accept must re-encode to a header that
// decodes back to itself.
func FuzzForwardDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"v\":1,\"sender\":\"n1\",\"batch\":1,\"tenant\":\"t\",\"query\":\"q\",\"slot\":0,\"epoch\":0,\"count\":0}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, evs, bad, err := DecodeForwardFrame(data)
		if err != nil {
			return
		}
		if h.V != ForwardFrameVersion {
			t.Fatalf("accepted frame version %d", h.V)
		}
		if h.Sender == "" || h.Slot < 0 || h.Count < 0 || h.Count > maxForwardCount {
			t.Fatalf("accepted invalid header %+v", h)
		}
		// Decoded events + bad lines cannot exceed the physical line
		// count of the body (a lying Count must not inflate them).
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			lines := bytes.Count(data[i+1:], []byte("\n")) + 1
			if len(evs)+bad > lines {
				t.Fatalf("decoded %d events + %d bad from %d body lines", len(evs), bad, lines)
			}
		} else if len(evs)+bad != 0 {
			t.Fatalf("decoded %d events + %d bad from an empty body", len(evs), bad)
		}
		// Round-trip: the header we accepted re-encodes losslessly.
		h2, err := DecodeForwardHeader(EncodeForwardHeader(h))
		if err != nil {
			t.Fatalf("re-encoded header rejected: %v", err)
		}
		if h2 != h {
			t.Fatalf("header round-trip diverged: %+v vs %+v", h, h2)
		}
	})
}

// TestRegenForwardFuzzCorpus rewrites the checked-in seed corpus for
// FuzzForwardDecode when CEPSHED_REGEN_CORPUS=1. Run it after any
// frame-format change (and bump ForwardFrameVersion):
//
//	CEPSHED_REGEN_CORPUS=1 go test ./internal/cluster -run RegenForwardFuzzCorpus
func TestRegenForwardFuzzCorpus(t *testing.T) {
	if os.Getenv("CEPSHED_REGEN_CORPUS") != "1" {
		t.Skip("set CEPSHED_REGEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzForwardDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	line := func(id int64, typ string) []byte {
		e := event.New(typ, 10*event.Millisecond, map[string]event.Value{"ID": event.Int(id), "V": event.Int(1)})
		return append(runtime.EncodeEvent(e), '\n')
	}
	hdr := EncodeForwardHeader(ForwardHeader{
		V: ForwardFrameVersion, Sender: "n1", Batch: 7, Tenant: "t1", Query: "abc",
		Slot: 3, Epoch: 2, Count: 3,
	})
	valid := append(append(append(append([]byte(nil), hdr...), line(1, "A")...), line(1, "B")...), line(1, "C")...)

	badLine := append(append([]byte(nil), hdr...), []byte("{not json}\n")...)
	badLine = append(badLine, line(2, "A")...)

	lyingCount := EncodeForwardHeader(ForwardHeader{
		V: ForwardFrameVersion, Sender: "n1", Batch: 8, Count: maxForwardCount,
	})

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20

	seeds := map[string][]byte{
		"frame-valid":      valid,
		"frame-bad-line":   badLine,
		"frame-bitflip":    flipped,
		"frame-trunc":      valid[:len(valid)/2],
		"header-only":      hdr,
		"header-no-nl":     bytes.TrimSuffix(hdr, []byte("\n")),
		"lying-count":      lyingCount,
		"wrong-version":    []byte(`{"v":9,"sender":"n1","batch":1,"count":0}` + "\n"),
		"unknown-field":    []byte(`{"v":1,"sender":"n1","batch":1,"count":0,"extra":true}` + "\n"),
		"negative-slot":    []byte(`{"v":1,"sender":"n1","batch":1,"slot":-4,"count":0}` + "\n"),
		"empty-sender":     []byte(`{"v":1,"sender":"","batch":1,"count":0}` + "\n"),
		"oversized-header": append(append([]byte(`{"v":1,"sender":"`), bytes.Repeat([]byte("x"), maxForwardHeader)...), []byte(`","batch":1,"count":0}`+"\n")...),
		"not-json":         []byte("hello\nworld\n"),
		"zero-length":      {},
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
