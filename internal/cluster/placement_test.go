package cluster

import (
	"testing"
)

var testNames = []string{"n1", "n2", "n3"}

// Rendezvous ownership is a pure function of (fp, slot, liveness):
// every node computes the same owner, and the distribution uses every
// node.
func TestRendezvousDeterministicAndSpread(t *testing.T) {
	p := NewPlacement(testNames)
	q := NewPlacement([]string{"n3", "n1", "n2"}) // order must not matter
	seen := map[string]int{}
	for fp := uint64(1); fp <= 4; fp++ {
		for slot := 0; slot < 32; slot++ {
			a, ok := p.Owner(fp, slot)
			if !ok {
				t.Fatalf("no owner for fp=%d slot=%d", fp, slot)
			}
			b, _ := q.Owner(fp, slot)
			if a != b {
				t.Fatalf("fp=%d slot=%d: owner %q vs %q across name orders", fp, slot, a, b)
			}
			seen[a]++
		}
	}
	for _, n := range testNames {
		if seen[n] == 0 {
			t.Errorf("node %s owns zero of 128 slots — degenerate hash spread: %v", n, seen)
		}
	}
}

// Marking one node down moves ONLY that node's slots (minimal-disruption
// property of highest-random-weight hashing); everything else stays put.
func TestRendezvousMinimalMovementOnFailure(t *testing.T) {
	p := NewPlacement(testNames)
	before := map[int]string{}
	for slot := 0; slot < 64; slot++ {
		before[slot], _ = p.Owner(7, slot)
	}
	p.SetDown("n2", true)
	for slot := 0; slot < 64; slot++ {
		after, ok := p.Owner(7, slot)
		if !ok {
			t.Fatalf("slot %d lost its owner", slot)
		}
		if after == "n2" {
			t.Fatalf("slot %d still owned by the down node", slot)
		}
		if before[slot] != "n2" && after != before[slot] {
			t.Errorf("slot %d moved %s→%s though its owner did not fail", slot, before[slot], after)
		}
	}
	// Recovery restores the exact original assignment.
	p.SetDown("n2", false)
	for slot := 0; slot < 64; slot++ {
		if got, _ := p.Owner(7, slot); got != before[slot] {
			t.Errorf("slot %d: owner %s after recovery, want %s", slot, got, before[slot])
		}
	}
}

// An override redirects a slot while its target is up and is ignored —
// not deleted — while the target is down.
func TestOverridePrecedenceAndDownTarget(t *testing.T) {
	p := NewPlacement(testNames)
	key := SlotKey{FP: 9, Slot: 3}
	def, _ := p.Owner(9, 3)
	target := "n1"
	if def == "n1" {
		target = "n2"
	}
	p.SetOverride(key, target)
	if got, _ := p.Owner(9, 3); got != target {
		t.Fatalf("override ignored: owner = %s, want %s", got, target)
	}
	p.SetDown(target, true)
	if got, _ := p.Owner(9, 3); got == target {
		t.Fatal("override still points at a down node")
	}
	p.SetDown(target, false)
	if got, _ := p.Owner(9, 3); got != target {
		t.Fatalf("override not restored after target recovery: owner = %s", got)
	}
}

// OwnerIfUp reconstructs the pre-failure view — the survivor's "which
// slots did the dead node own" question.
func TestOwnerIfUp(t *testing.T) {
	p := NewPlacement(testNames)
	owned := map[int]string{}
	for slot := 0; slot < 64; slot++ {
		owned[slot], _ = p.Owner(5, slot)
	}
	p.SetDown("n3", true)
	for slot := 0; slot < 64; slot++ {
		got, ok := p.OwnerIfUp(5, slot, "n3")
		if !ok || got != owned[slot] {
			t.Errorf("slot %d: OwnerIfUp = %s/%v, want %s", slot, got, ok, owned[slot])
		}
	}
}

// Merge resolves conflicting overrides deterministically so any gossip
// order converges: up target beats down target, then the lexically
// smaller name.
func TestMergeConvergesRegardlessOfOrder(t *testing.T) {
	key := SlotKey{FP: 1, Slot: 0}
	a := Override{SlotKey: key, Node: "n1"}
	b := Override{SlotKey: key, Node: "n2"}

	p1 := NewPlacement(testNames)
	p1.Merge([]Override{a})
	p1.Merge([]Override{b})
	p2 := NewPlacement(testNames)
	p2.Merge([]Override{b})
	p2.Merge([]Override{a})
	_, o1 := p1.Overrides()
	_, o2 := p2.Overrides()
	if len(o1) != 1 || len(o2) != 1 || o1[0].Node != o2[0].Node {
		t.Fatalf("merge order changed the winner: %v vs %v", o1, o2)
	}
	if o1[0].Node != "n1" {
		t.Errorf("both targets up: winner = %s, want lexically smaller n1", o1[0].Node)
	}

	// A down target loses to an up one even when lexically smaller.
	p3 := NewPlacement(testNames)
	p3.SetDown("n1", true)
	p3.Merge([]Override{a})
	p3.Merge([]Override{b})
	_, o3 := p3.Overrides()
	if o3[0].Node != "n2" {
		t.Errorf("down target kept the slot: winner = %s, want up node n2", o3[0].Node)
	}
}

func TestTopologyValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		top  Topology
		ok   bool
	}{
		{"two nodes", Topology{Nodes: []NodeSpec{{Name: "a", Addr: "h:1"}, {Name: "b", Addr: "h:2"}}}, true},
		{"one node", Topology{Nodes: []NodeSpec{{Name: "a", Addr: "h:1"}}}, false},
		{"dup name", Topology{Nodes: []NodeSpec{{Name: "a", Addr: "h:1"}, {Name: "a", Addr: "h:2"}}}, false},
		{"dup addr", Topology{Nodes: []NodeSpec{{Name: "a", Addr: "h:1"}, {Name: "b", Addr: "h:1"}}}, false},
		{"missing addr", Topology{Nodes: []NodeSpec{{Name: "a", Addr: "h:1"}, {Name: "b"}}}, false},
	} {
		if err := tc.top.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
