package cluster

import (
	"fmt"
	"net/http"
)

// Dynamic topology reload: apply a new membership list to a running
// node without restarting it. Adding a node must not silently reshuffle
// ownership — rendezvous hashing over a larger member set would move a
// fraction of every query's slots to the newcomer instantly, stranding
// their partial-match state on the old owners. So the reload PINS every
// slot whose computed owner would change to its pre-reload owner via an
// epoch-bumped override; the operator (or a rebalancer) then migrates
// slots one at a time with MoveSlot, each move carrying its state.
// Removing a node is the opposite: its links and detector state go
// away, its overrides stop influencing ownership (the member check in
// ownerLocked), and rendezvous re-assigns its slots to survivors —
// state is lost unless the operator MoveSlot'ed them away first, which
// is why removal of a LIVE node should be preceded by draining.

// ReloadTopology replaces the node's membership at runtime. The new
// topology must validate and must still contain this node. Safe to call
// while ingest is running; it serializes against handoffs and
// failovers.
func (n *Node) ReloadTopology(newTop Topology) error {
	if err := newTop.Validate(); err != nil {
		return err
	}
	if _, ok := newTop.Find(n.cfg.Self); !ok {
		return fmt.Errorf("cluster: reload would remove self %q from topology", n.cfg.Self)
	}
	n.moveMu.Lock()
	defer n.moveMu.Unlock()

	newNames := map[string]bool{}
	for _, spec := range newTop.Nodes {
		newNames[spec.Name] = true
	}

	// Pin ownership BEFORE the member list changes: for every slot of
	// every registered query, record the current owner as an override if
	// (a) it would change under the new member set and (b) the current
	// owner survives the reload. Each pin bumps the slot's epoch, so
	// gossip carries the pins to every peer (including the newcomer,
	// whose fresh rendezvous view would otherwise claim slots it has no
	// state for).
	type pin struct {
		k     SlotKey
		owner string
	}
	var pins []pin
	for _, in := range n.reg.ActiveInstances() {
		fp := in.Fingerprint()
		for slot := 0; slot < in.NumSlots(); slot++ {
			owner, ok := n.place.Owner(fp, slot)
			if !ok || !newNames[owner] {
				continue
			}
			newOwner := rendezvous(fp, slot, newTop.Names(), func(name string) bool {
				// Judge the future view with current liveness: a member we
				// consider down now stays ineligible.
				return !n.place.IsDown(name)
			})
			if newOwner != owner {
				pins = append(pins, pin{k: SlotKey{FP: fp, Slot: slot}, owner: owner})
			}
		}
	}

	n.peerMu.Lock()
	// Remove links for departed peers; their forwarders drain and count
	// queued items as dropped.
	for name, pl := range n.peers {
		if !newNames[name] {
			close(pl.stop)
			delete(n.peers, name)
			n.det.RemovePeer(name)
			n.cfg.Logf("cluster: topology reload removed peer %s", name)
		}
	}
	// Add links for new peers and start their forwarders.
	for _, spec := range newTop.Nodes {
		if spec.Name == n.cfg.Self {
			continue
		}
		if _, ok := n.peers[spec.Name]; ok {
			continue
		}
		pl := newPeerLink(spec, n.cfg.ForwardBuf)
		n.peers[spec.Name] = pl
		n.det.AddPeer(spec)
		n.wg.Add(1)
		go n.forwarder(pl)
		n.cfg.Logf("cluster: topology reload added peer %s (%s)", spec.Name, spec.Addr)
	}
	n.cfg.Topology = newTop
	n.peerMu.Unlock()

	n.place.SetMembers(newTop.Names())
	for _, p := range pins {
		n.place.SetOverride(p.k, p.owner)
	}
	if len(pins) > 0 {
		n.cfg.Logf("cluster: topology reload pinned %d slot(s) to their current owners", len(pins))
	}
	// Tell everyone — the pins fence the newcomer's fresh rendezvous
	// view, and departed peers' slots re-route on the next gossip.
	n.pushPlacement()
	return nil
}

// HandleReload serves POST /cluster/reload: re-read the topology file
// this node was started from and apply it. The server wires loadTop to
// its -cluster flag; SIGHUP triggers the same path.
func (n *Node) HandleReload(loadTop func() (Topology, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		top, err := loadTop()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := n.ReloadTopology(top); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"members":%d}`+"\n", len(top.Nodes))
	}
}
