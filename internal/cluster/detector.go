package cluster

import (
	"math/rand"
	"sync"
	"time"

	"cepshed/internal/runtime"
)

// DetectorConfig tunes the heartbeat failure detector.
type DetectorConfig struct {
	// Interval between heartbeats to an up peer (default 100ms).
	Interval time.Duration
	// Misses is how many consecutive failed heartbeats declare a peer
	// dead (default 3). The detection window — Misses × Interval plus
	// one probe timeout — is one term of the failover loss bound.
	Misses int
	// Policy shapes probe backoff while a peer is down: the same
	// capped, jittered exponential schedule the shard supervisor uses
	// for worker restarts, because the failure mode is the same (don't
	// hammer something that just died; don't wait forever to notice it
	// came back). Zero value: supervisor defaults (10ms base, 2s cap).
	Policy runtime.RestartPolicy
	// FlapDeaths within FlapWindow quarantines the peer (default 3 in
	// 1min): a node that oscillates up/down would otherwise thrash
	// ownership back and forth, migrating state on every transition.
	// A quarantined peer stays "down" for placement even while its
	// heartbeats succeed, until QuarantineFor elapses.
	FlapDeaths    int
	FlapWindow    time.Duration
	QuarantineFor time.Duration
	// Probe performs one heartbeat; non-nil error is a miss. It must
	// enforce its own timeout.
	Probe func(spec NodeSpec) error
	// OnDown/OnUp fire on state transitions, on the detector goroutine
	// for that peer. OnUp fires only after any quarantine expired.
	OnDown func(name string)
	OnUp   func(name string)
	// Seed fixes backoff jitter for tests; 0 seeds from the peer name.
	Seed int64
	Logf func(format string, args ...any)
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Misses <= 0 {
		c.Misses = 3
	}
	if c.FlapDeaths <= 0 {
		c.FlapDeaths = 3
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = time.Minute
	}
	if c.QuarantineFor <= 0 {
		c.QuarantineFor = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// PeerStatus is one peer's observed liveness, for /cluster.
type PeerStatus struct {
	Name             string    `json:"name"`
	Addr             string    `json:"addr"`
	Up               bool      `json:"up"`
	Misses           int       `json:"misses,omitempty"`
	Deaths           int       `json:"deaths,omitempty"`
	Quarantined      bool      `json:"quarantined,omitempty"`
	QuarantinedUntil time.Time `json:"quarantined_until,omitempty"`
	LastContact      time.Time `json:"last_contact,omitempty"`
}

type peerState struct {
	mu               sync.Mutex
	spec             NodeSpec
	stop             chan struct{}
	up               bool
	misses           int
	deadProbes       int
	deaths           []time.Time
	quarantinedUntil time.Time
	lastContact      time.Time
}

// Detector runs one probing goroutine per peer. Peers start presumed
// up (a cold cluster must not failover nodes that simply haven't
// finished booting); the first Misses failures flip them down.
type Detector struct {
	cfg DetectorConfig

	mu      sync.Mutex
	peers   map[string]*peerState
	started bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewDetector builds a detector over the given peers (self excluded by
// the caller).
func NewDetector(cfg DetectorConfig, peers []NodeSpec) *Detector {
	d := &Detector{
		cfg:   cfg.withDefaults(),
		peers: map[string]*peerState{},
		done:  make(chan struct{}),
	}
	for _, p := range peers {
		d.peers[p.Name] = &peerState{spec: p, stop: make(chan struct{}), up: true}
	}
	return d
}

// Start launches the per-peer probe loops.
func (d *Detector) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.started = true
	for _, ps := range d.peers {
		d.wg.Add(1)
		go d.run(ps)
	}
}

// Close stops probing and waits for the loops to exit.
func (d *Detector) Close() {
	close(d.done)
	d.wg.Wait()
}

// AddPeer starts probing a new peer (dynamic topology reload). The
// peer starts presumed up, like every peer at boot. No-op when the
// name is already tracked.
func (d *Detector) AddPeer(spec NodeSpec) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.peers[spec.Name]; ok {
		return
	}
	ps := &peerState{spec: spec, stop: make(chan struct{}), up: true}
	d.peers[spec.Name] = ps
	if d.started {
		d.wg.Add(1)
		go d.run(ps)
	}
}

// RemovePeer stops probing a peer and forgets its state.
func (d *Detector) RemovePeer(name string) {
	d.mu.Lock()
	ps, ok := d.peers[name]
	if ok {
		delete(d.peers, name)
	}
	d.mu.Unlock()
	if ok {
		close(ps.stop)
	}
}

// PeerUp reports this detector's current view of one peer — the
// answer a survivor asks for before failing a third node over (death
// confirmation). A quarantined peer reports down, matching Status.
func (d *Detector) PeerUp(name string) (up, known bool) {
	d.mu.Lock()
	ps, ok := d.peers[name]
	d.mu.Unlock()
	if !ok {
		return false, false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.up && !time.Now().Before(ps.quarantinedUntil), true
}

// Status snapshots every peer's state, sorted by name upstream.
func (d *Detector) Status() []PeerStatus {
	d.mu.Lock()
	peers := make([]*peerState, 0, len(d.peers))
	for _, ps := range d.peers {
		peers = append(peers, ps)
	}
	d.mu.Unlock()
	out := make([]PeerStatus, 0, len(peers))
	for _, ps := range peers {
		ps.mu.Lock()
		q := time.Now().Before(ps.quarantinedUntil)
		out = append(out, PeerStatus{
			Name:             ps.spec.Name,
			Addr:             ps.spec.Addr,
			Up:               ps.up && !q,
			Misses:           ps.misses,
			Deaths:           len(ps.deaths),
			Quarantined:      q,
			QuarantinedUntil: ps.quarantinedUntil,
			LastContact:      ps.lastContact,
		})
		ps.mu.Unlock()
	}
	return out
}

func (d *Detector) run(ps *peerState) {
	defer d.wg.Done()
	seed := d.cfg.Seed
	if seed == 0 {
		seed = int64(nameHash(ps.spec.Name))
	}
	rng := rand.New(rand.NewSource(seed))
	timer := time.NewTimer(d.cfg.Interval)
	defer timer.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-ps.stop:
			return
		case <-timer.C:
		}
		err := d.cfg.Probe(ps.spec)
		timer.Reset(d.step(ps, err, rng))
	}
}

// step folds one probe result into the peer's state and returns the
// delay before the next probe.
func (d *Detector) step(ps *peerState, err error, rng *rand.Rand) time.Duration {
	ps.mu.Lock()
	now := time.Now()
	if err == nil {
		ps.lastContact = now
		ps.misses = 0
		ps.deadProbes = 0
		wasDown := !ps.up
		ps.up = true
		quarantined := now.Before(ps.quarantinedUntil)
		ps.mu.Unlock()
		if wasDown && !quarantined {
			d.cfg.Logf("cluster: peer %s back up", ps.spec.Name)
			if d.cfg.OnUp != nil {
				d.cfg.OnUp(ps.spec.Name)
			}
		}
		// A quarantined peer answering heartbeats stays benched until the
		// quarantine expires; the next successful probe after expiry
		// revives it (wasDown stays true because OnUp never fired).
		if quarantined {
			ps.mu.Lock()
			ps.up = false
			ps.mu.Unlock()
			return d.cfg.Interval
		}
		return d.cfg.Interval
	}
	ps.misses++
	if ps.up && ps.misses >= d.cfg.Misses {
		ps.up = false
		ps.deaths = append(ps.deaths, now)
		// Trim deaths outside the flap window.
		cut := 0
		for cut < len(ps.deaths) && now.Sub(ps.deaths[cut]) > d.cfg.FlapWindow {
			cut++
		}
		ps.deaths = ps.deaths[cut:]
		flapping := len(ps.deaths) >= d.cfg.FlapDeaths
		if flapping {
			ps.quarantinedUntil = now.Add(d.cfg.QuarantineFor)
		}
		ps.mu.Unlock()
		if flapping {
			d.cfg.Logf("cluster: peer %s flapping (%d deaths in %v), quarantined for %v",
				ps.spec.Name, d.cfg.FlapDeaths, d.cfg.FlapWindow, d.cfg.QuarantineFor)
		} else {
			d.cfg.Logf("cluster: peer %s down after %d missed heartbeats", ps.spec.Name, d.cfg.Misses)
		}
		if d.cfg.OnDown != nil {
			d.cfg.OnDown(ps.spec.Name)
		}
		return d.cfg.Policy.Backoff(1, rng)
	}
	if !ps.up {
		ps.deadProbes++
		n := ps.deadProbes
		ps.mu.Unlock()
		return d.cfg.Policy.Backoff(n, rng)
	}
	ps.mu.Unlock()
	return d.cfg.Interval
}
