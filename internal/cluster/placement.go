package cluster

import (
	"sort"
	"sync"
)

// SlotKey identifies one unit of placement: a query instance (by its
// registry fingerprint, identical on every node because it hashes the
// spec) and one of its shard slots.
type SlotKey struct {
	FP   uint64 `json:"fp"`
	Slot int    `json:"slot"`
}

// Override is one explicit placement decision, recorded when a slot
// moved off its rendezvous-default node (planned handoff or failover).
// Epoch is the slot's fencing counter: every ownership change bumps
// it, every forward carries it, and in gossip conflicts the higher
// epoch wins — so after a partition heals, every node converges on
// the most recent ownership decision rather than on gossip order.
type Override struct {
	SlotKey
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch"`
}

// ovEntry is the stored form of an override.
type ovEntry struct {
	node  string
	epoch uint64
}

// Placement is a node's view of slot ownership: the static member
// list, which members it currently considers up, and the override map.
// Ownership is computed, not stored: Owner() consults overrides first,
// then rendezvous-hashes over up nodes. Because the hash and the
// topology are identical everywhere, two nodes with the same liveness
// view and override set always agree on every owner — the only
// coordination the cluster needs is gossiping overrides.
//
// Overrides are soft state: they live in memory and are re-exchanged
// on /cluster/placement. A full cluster restart forgets them and
// ownership reverts to pure rendezvous; that is safe (the ceded
// tombstones prevent duplicate replay) but documented as a known gap
// in docs/CLUSTER.md.
type Placement struct {
	mu        sync.RWMutex
	names     []string // sorted; replaced wholesale by SetMembers
	member    map[string]bool
	down      map[string]bool
	overrides map[SlotKey]ovEntry
	version   uint64
}

// NewPlacement builds a placement over the topology's node names, all
// initially up.
func NewPlacement(names []string) *Placement {
	s := append([]string(nil), names...)
	sort.Strings(s)
	member := make(map[string]bool, len(s))
	for _, n := range s {
		member[n] = true
	}
	return &Placement{
		names:     s,
		member:    member,
		down:      map[string]bool{},
		overrides: map[SlotKey]ovEntry{},
	}
}

// mix64 is splitmix64's finalizer — a cheap, deterministic 64-bit
// avalanche shared by every node (no per-process seed, by design).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nameHash(name string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	return h
}

// rendezvous picks the eligible node with the highest score for the
// slot (highest-random-weight hashing): moving ONE node in or out of
// the eligible set only moves the slots that node wins or loses, so a
// failover migrates the dead node's slots and nothing else.
func rendezvous(fp uint64, slot int, names []string, eligible func(string) bool) string {
	best, bestScore := "", uint64(0)
	for _, n := range names {
		if !eligible(n) {
			continue
		}
		score := mix64(fp ^ mix64(uint64(slot)) ^ nameHash(n))
		if best == "" || score > bestScore || (score == bestScore && n < best) {
			best, bestScore = n, score
		}
	}
	return best
}

// Owner returns the node that owns (fp, slot) under the current
// liveness view, and false when no node is up. An override pointing at
// a down node is ignored (failover will re-point it).
func (p *Placement) Owner(fp uint64, slot int) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ownerLocked(fp, slot, p.down)
}

func (p *Placement) ownerLocked(fp uint64, slot int, down map[string]bool) (string, bool) {
	if o, ok := p.overrides[SlotKey{FP: fp, Slot: slot}]; ok && p.member[o.node] && !down[o.node] {
		return o.node, true
	}
	n := rendezvous(fp, slot, p.names, func(name string) bool { return !down[name] })
	return n, n != ""
}

// OwnerEpoch returns the owner plus the slot's current fencing epoch
// (zero when the slot has never moved off its rendezvous default).
func (p *Placement) OwnerEpoch(fp uint64, slot int) (string, uint64, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	owner, ok := p.ownerLocked(fp, slot, p.down)
	return owner, p.overrides[SlotKey{FP: fp, Slot: slot}].epoch, ok
}

// Epoch returns the slot's current fencing epoch.
func (p *Placement) Epoch(fp uint64, slot int) uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.overrides[SlotKey{FP: fp, Slot: slot}].epoch
}

// OwnerIfUp computes the owner pretending `node` were up — the
// "before" view a survivor uses to decide which slots a freshly dead
// node was responsible for.
func (p *Placement) OwnerIfUp(fp uint64, slot int, node string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.down[node] {
		return p.ownerLocked(fp, slot, p.down)
	}
	view := make(map[string]bool, len(p.down))
	for k, v := range p.down {
		view[k] = v
	}
	delete(view, node)
	return p.ownerLocked(fp, slot, view)
}

// SetDown flips one node's liveness in this view.
func (p *Placement) SetDown(name string, down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down[name] == down {
		return
	}
	if down {
		p.down[name] = true
	} else {
		delete(p.down, name)
	}
	p.version++
}

// Down reports whether the view currently considers the node down.
func (p *Placement) IsDown(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.down[name]
}

// AnyDown reports whether any member is considered down — the
// cluster-degraded signal driving router admission.
func (p *Placement) AnyDown() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.down) > 0
}

// SetOverride records an explicit owner for a slot, bumping its
// fencing epoch past everything this node has seen — the caller just
// changed ownership (handoff, failover, membership pin), and the bump
// is what makes the change win gossip merges and fence stale forwards.
// It returns the new epoch.
func (p *Placement) SetOverride(k SlotKey, node string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.overrides[k]
	if cur.node == node && cur.epoch > 0 {
		return cur.epoch
	}
	e := cur.epoch + 1
	p.overrides[k] = ovEntry{node: node, epoch: e}
	p.version++
	return e
}

// AdoptOverride records an override learned from a peer (a forward
// NACK carries the refusing node's placement). It only applies when
// the learned epoch is newer than ours — stale news never regresses
// ownership. Reports whether the entry changed.
func (p *Placement) AdoptOverride(k SlotKey, node string, epoch uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.overrides[k]
	if epoch <= cur.epoch {
		return false
	}
	p.overrides[k] = ovEntry{node: node, epoch: epoch}
	p.version++
	return true
}

// SetMembers replaces the member list (dynamic topology reload).
// Liveness state for removed members is pruned; overrides pointing at
// removed members stay recorded but stop influencing ownership (the
// member check in ownerLocked) until the operator re-points them.
func (p *Placement) SetMembers(names []string) {
	s := append([]string(nil), names...)
	sort.Strings(s)
	member := make(map[string]bool, len(s))
	for _, n := range s {
		member[n] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.names = s
	p.member = member
	for n := range p.down {
		if !member[n] {
			delete(p.down, n)
		}
	}
	p.version++
}

// Members returns the current sorted member list.
func (p *Placement) Members() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]string(nil), p.names...)
}

// Overrides snapshots the override map with a version stamp.
func (p *Placement) Overrides() (uint64, []Override) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Override, 0, len(p.overrides))
	for k, o := range p.overrides {
		out = append(out, Override{SlotKey: k, Node: o.node, Epoch: o.epoch})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FP != out[j].FP {
			return out[i].FP < out[j].FP
		}
		return out[i].Slot < out[j].Slot
	})
	return p.version, out
}

// Merge folds a peer's overrides into this view. Conflicts (both
// sides claim the slot for different nodes) resolve deterministically:
// the higher epoch wins outright — it records the more recent
// ownership change, which is what fencing is for. At equal epochs the
// pre-epoch tie rules apply (the entry whose target node is up wins;
// both up, lexically smaller name wins) so every node still converges
// to the same map regardless of gossip order.
func (p *Placement) Merge(ovs []Override) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := 0
	for _, o := range ovs {
		cur, ok := p.overrides[o.SlotKey]
		if !ok {
			p.overrides[o.SlotKey] = ovEntry{node: o.Node, epoch: o.Epoch}
			changed++
			continue
		}
		if cur.node == o.Node {
			if o.Epoch > cur.epoch {
				p.overrides[o.SlotKey] = ovEntry{node: o.Node, epoch: o.Epoch}
				changed++
			}
			continue
		}
		win := cur
		switch {
		case o.Epoch > cur.epoch:
			win = ovEntry{node: o.Node, epoch: o.Epoch}
		case o.Epoch < cur.epoch:
			// keep cur
		default:
			curUp, newUp := !p.down[cur.node], !p.down[o.Node]
			switch {
			case curUp && !newUp:
				// keep cur
			case newUp && !curUp:
				win = ovEntry{node: o.Node, epoch: o.Epoch}
			case o.Node < cur.node:
				win = ovEntry{node: o.Node, epoch: o.Epoch}
			}
		}
		if win != cur {
			p.overrides[o.SlotKey] = win
			changed++
		}
	}
	if changed > 0 {
		p.version++
	}
	return changed
}

// Version returns the monotone local mutation counter (diagnostic
// only — versions are per-node, not a cluster-wide clock).
func (p *Placement) Version() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.version
}
