package cluster

import (
	"sort"
	"sync"
)

// SlotKey identifies one unit of placement: a query instance (by its
// registry fingerprint, identical on every node because it hashes the
// spec) and one of its shard slots.
type SlotKey struct {
	FP   uint64 `json:"fp"`
	Slot int    `json:"slot"`
}

// Override is one explicit placement decision, recorded when a slot
// moved off its rendezvous-default node (planned handoff or failover).
type Override struct {
	SlotKey
	Node string `json:"node"`
}

// Placement is a node's view of slot ownership: the static member
// list, which members it currently considers up, and the override map.
// Ownership is computed, not stored: Owner() consults overrides first,
// then rendezvous-hashes over up nodes. Because the hash and the
// topology are identical everywhere, two nodes with the same liveness
// view and override set always agree on every owner — the only
// coordination the cluster needs is gossiping overrides.
//
// Overrides are soft state: they live in memory and are re-exchanged
// on /cluster/placement. A full cluster restart forgets them and
// ownership reverts to pure rendezvous; that is safe (the ceded
// tombstones prevent duplicate replay) but documented as a known gap
// in docs/CLUSTER.md.
type Placement struct {
	mu        sync.RWMutex
	names     []string // sorted, static
	down      map[string]bool
	overrides map[SlotKey]string
	version   uint64
}

// NewPlacement builds a placement over the topology's node names, all
// initially up.
func NewPlacement(names []string) *Placement {
	s := append([]string(nil), names...)
	sort.Strings(s)
	return &Placement{
		names:     s,
		down:      map[string]bool{},
		overrides: map[SlotKey]string{},
	}
}

// mix64 is splitmix64's finalizer — a cheap, deterministic 64-bit
// avalanche shared by every node (no per-process seed, by design).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nameHash(name string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	return h
}

// rendezvous picks the eligible node with the highest score for the
// slot (highest-random-weight hashing): moving ONE node in or out of
// the eligible set only moves the slots that node wins or loses, so a
// failover migrates the dead node's slots and nothing else.
func rendezvous(fp uint64, slot int, names []string, eligible func(string) bool) string {
	best, bestScore := "", uint64(0)
	for _, n := range names {
		if !eligible(n) {
			continue
		}
		score := mix64(fp ^ mix64(uint64(slot)) ^ nameHash(n))
		if best == "" || score > bestScore || (score == bestScore && n < best) {
			best, bestScore = n, score
		}
	}
	return best
}

// Owner returns the node that owns (fp, slot) under the current
// liveness view, and false when no node is up. An override pointing at
// a down node is ignored (failover will re-point it).
func (p *Placement) Owner(fp uint64, slot int) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ownerLocked(fp, slot, p.down)
}

func (p *Placement) ownerLocked(fp uint64, slot int, down map[string]bool) (string, bool) {
	if o, ok := p.overrides[SlotKey{FP: fp, Slot: slot}]; ok && !down[o] {
		return o, true
	}
	n := rendezvous(fp, slot, p.names, func(name string) bool { return !down[name] })
	return n, n != ""
}

// OwnerIfUp computes the owner pretending `node` were up — the
// "before" view a survivor uses to decide which slots a freshly dead
// node was responsible for.
func (p *Placement) OwnerIfUp(fp uint64, slot int, node string) (string, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.down[node] {
		return p.ownerLocked(fp, slot, p.down)
	}
	view := make(map[string]bool, len(p.down))
	for k, v := range p.down {
		view[k] = v
	}
	delete(view, node)
	return p.ownerLocked(fp, slot, view)
}

// SetDown flips one node's liveness in this view.
func (p *Placement) SetDown(name string, down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down[name] == down {
		return
	}
	if down {
		p.down[name] = true
	} else {
		delete(p.down, name)
	}
	p.version++
}

// Down reports whether the view currently considers the node down.
func (p *Placement) IsDown(name string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.down[name]
}

// AnyDown reports whether any member is considered down — the
// cluster-degraded signal driving router admission.
func (p *Placement) AnyDown() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.down) > 0
}

// SetOverride records an explicit owner for a slot.
func (p *Placement) SetOverride(k SlotKey, node string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.overrides[k] == node {
		return
	}
	p.overrides[k] = node
	p.version++
}

// Overrides snapshots the override map with a version stamp.
func (p *Placement) Overrides() (uint64, []Override) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Override, 0, len(p.overrides))
	for k, n := range p.overrides {
		out = append(out, Override{SlotKey: k, Node: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FP != out[j].FP {
			return out[i].FP < out[j].FP
		}
		return out[i].Slot < out[j].Slot
	})
	return p.version, out
}

// Merge folds a peer's overrides into this view. Conflicts (both sides
// claim the slot for different nodes) resolve deterministically: the
// entry whose target node is up wins; if both targets are up, the
// lexically smaller node name wins, so every node converges to the
// same map regardless of gossip order.
func (p *Placement) Merge(ovs []Override) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := 0
	for _, o := range ovs {
		cur, ok := p.overrides[o.SlotKey]
		if !ok {
			p.overrides[o.SlotKey] = o.Node
			changed++
			continue
		}
		if cur == o.Node {
			continue
		}
		curUp, newUp := !p.down[cur], !p.down[o.Node]
		win := cur
		switch {
		case curUp && !newUp:
			win = cur
		case newUp && !curUp:
			win = o.Node
		case o.Node < cur:
			win = o.Node
		}
		if win != cur {
			p.overrides[o.SlotKey] = win
			changed++
		}
	}
	if changed > 0 {
		p.version++
	}
	return changed
}

// Version returns the monotone local mutation counter (diagnostic
// only — versions are per-node, not a cluster-wide clock).
func (p *Placement) Version() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.version
}
