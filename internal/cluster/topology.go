// Package cluster is the fault-tolerant multi-node layer over the
// single-process serving core: a static topology of 2–3 cepserved
// nodes, each running the SAME query registry, with shard slots —
// the unit of placement is one (query, shard slot) pair — distributed
// across nodes by rendezvous hashing plus an explicit override map.
//
// The design splits into four pieces, one file each:
//
//   - topology.go: the static membership (name, HTTP address, state
//     root per node), loaded from a JSON file identical on every node.
//   - placement.go: pure ownership math. Owner(query, slot) =
//     override if set, else rendezvous hash over nodes currently
//     considered up. Deterministic, so every node computes the same
//     answer from the same liveness view without coordination.
//   - detector.go: per-peer heartbeat probing with the supervisor's
//     capped/jittered backoff while a peer is down and quarantine for
//     peers that flap.
//   - router.go / mover.go: the data plane (route or forward each
//     (event, query) pair to its slot's owner) and the control plane
//     (planned handoff: drain → export → ship → durable import →
//     retire; failover: survivor adopts a dead peer's slots from the
//     shared state directory, bounded loss, zero duplicate emissions).
//
// See docs/CLUSTER.md for the protocol and its loss-bound math.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
)

// NodeSpec is one static cluster member.
type NodeSpec struct {
	// Name is the node's stable identity — placement hashes it, so
	// renaming a node reshuffles ownership.
	Name string `json:"name"`
	// Addr is the node's HTTP address ("host:port") for heartbeats,
	// forwarding, and handoff.
	Addr string `json:"addr"`
	// StateDir is the node's durable state root. Failover requires every
	// node to reach every other node's StateDir (shared filesystem): a
	// survivor adopts a dead peer's shards by reading its checkpoint
	// files from here. Empty disables state adoption for that node —
	// failover then cold-starts its slots (ownership moves, state lost).
	StateDir string `json:"state_dir,omitempty"`
}

// Topology is the static cluster membership. It is loaded from a file
// that must be identical on every node; there is no membership
// protocol — adding a node is a config change plus rolling restart.
type Topology struct {
	Nodes []NodeSpec `json:"nodes"`
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (Topology, error) {
	var t Topology
	data, err := os.ReadFile(path)
	if err != nil {
		return t, fmt.Errorf("cluster: topology: %w", err)
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("cluster: topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return t, fmt.Errorf("cluster: topology %s: %w", path, err)
	}
	return t, nil
}

// Validate checks structural invariants: at least two nodes (one node
// is not a cluster), unique names and addresses.
func (t Topology) Validate() error {
	if len(t.Nodes) < 2 {
		return fmt.Errorf("need at least 2 nodes, have %d", len(t.Nodes))
	}
	names := map[string]bool{}
	addrs := map[string]bool{}
	for _, n := range t.Nodes {
		if n.Name == "" || n.Addr == "" {
			return fmt.Errorf("node needs name and addr: %+v", n)
		}
		if names[n.Name] {
			return fmt.Errorf("duplicate node name %q", n.Name)
		}
		if addrs[n.Addr] {
			return fmt.Errorf("duplicate node addr %q", n.Addr)
		}
		names[n.Name] = true
		addrs[n.Addr] = true
	}
	return nil
}

// Find returns the spec for a node name.
func (t Topology) Find(name string) (NodeSpec, bool) {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return NodeSpec{}, false
}

// Names returns every node name in topology order.
func (t Topology) Names() []string {
	out := make([]string, len(t.Nodes))
	for i, n := range t.Nodes {
		out[i] = n.Name
	}
	return out
}
