package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/registry"
	"cepshed/internal/runtime"
)

// Input is one decoded, unstamped event at the ingest edge, plus
// whether its source line carried an explicit timestamp.
type Input struct {
	E       *event.Event
	HasTime bool
}

// RouteResult accounts one routed batch. The embedded OfferResult
// covers the pairs this node processed locally; the cluster fields
// cover pairs that left the node or died at the router.
type RouteResult struct {
	registry.OfferResult
	// ForwardedPairs were queued for a remote owner.
	ForwardedPairs int
	// DroppedPairs died at the router: forward queue full or owner
	// unreachable. Part of the cluster loss accounting, never silent.
	DroppedPairs int
	// ShedPairs were refused by degraded-mode router admission.
	ShedPairs int
}

type localGroup struct {
	in   *registry.Instance
	slot int
	evs  []*event.Event
}

// maxRedirects bounds how many times one forward batch may re-route
// after ownership NACKs before it is dropped (counted): placement
// views converge by gossip, so a batch still bouncing after this many
// hops is caught in a partition, and unbounded bouncing would loop.
const maxRedirects = 3

// OfferBatch routes one ingest batch the cluster way. For each
// (event, query) pair: compute the shard slot (deterministic hash —
// identical on every node), look up the slot's owner, then either
// offer locally (stamping seq here, at the owner) or enqueue the
// event's NDJSON encoding to the owner's forwarder. Events with no
// explicit timestamp get their arrival time stamped at this edge, so
// a forwarded event keeps its true arrival time rather than its
// delivery time at the owner.
func (n *Node) OfferBatch(batch []Input) RouteResult {
	var res RouteResult
	res.Events = len(batch)
	if len(batch) == 0 {
		return res
	}
	fill := -1.0
	localFill := func() float64 {
		if fill < 0 {
			fill = n.localFill()
		}
		return fill
	}
	var groups []localGroup
	for _, item := range batch {
		e := item.E
		if !item.HasTime {
			n.cfg.StampTime(e)
		}
		var line []byte // lazy: encoded once, shared by every remote owner
		stamped := false
		routed := n.reg.RouteEach(e, func(in *registry.Instance) {
			n.edgePairs.Add(1)
			fp := in.Fingerprint()
			slot := in.ShardSlot(e)
			owner, ok := n.place.Owner(fp, slot)
			if !ok {
				res.DroppedPairs++
				n.forwardDrop.Add(1)
				return
			}
			if owner == n.cfg.Self {
				if !n.gate.Admit(localFill()) {
					res.ShedPairs++
					n.edgeShed.Add(1)
					return
				}
				if !stamped {
					n.cfg.StampSeq(e)
					stamped = true
				}
				gi := -1
				for i := range groups {
					if groups[i].in == in && groups[i].slot == slot {
						gi = i
						break
					}
				}
				if gi < 0 {
					groups = append(groups, localGroup{in: in, slot: slot})
					gi = len(groups) - 1
				}
				groups[gi].evs = append(groups[gi].evs, e)
				return
			}
			pl, ok := n.peer(owner)
			if !ok || n.place.IsDown(owner) {
				res.DroppedPairs++
				n.forwardDrop.Add(1)
				if ok {
					pl.dropped.Add(1)
				}
				return
			}
			if line == nil {
				line = runtime.EncodeEvent(e)
			}
			spec := in.Spec()
			select {
			case pl.q <- fwdItem{tenant: spec.Tenant, query: spec.Name, fp: fp, slot: slot, line: line}:
				n.inFlight.Add(1)
				res.ForwardedPairs++
			default:
				// Queue overflow: the loud, metered shed the retry queue
				// degrades to during a sustained partition.
				res.DroppedPairs++
				n.forwardDrop.Add(1)
				pl.dropped.Add(1)
			}
		})
		if routed == 0 {
			res.Unrouted++
			n.unroutedPairs.Add(1)
			n.reg.NoteUnrouted(1)
		}
	}
	for i := range groups {
		or := groups[i].in.OfferSlot(groups[i].slot, groups[i].evs)
		res.Deliveries += or.Deliveries
		res.DoorRejected += or.DoorRejected
		res.ArbiterShed += or.ArbiterShed
		res.FloorSkipped += or.FloorSkipped
		n.noteDispositions(or)
	}
	return res
}

// noteDispositions folds one OfferSlot result into the node's audit
// ledger.
func (n *Node) noteDispositions(or registry.OfferResult) {
	n.delivered.Add(uint64(or.Deliveries))
	n.doorRejected.Add(uint64(or.DoorRejected))
	n.arbiterShed.Add(uint64(or.ArbiterShed))
	n.floorSkipped.Add(uint64(or.FloorSkipped))
}

// localFill is the max aggregate queue fill across local runtimes —
// the signal degraded-mode router admission keys on.
func (n *Node) localFill() float64 {
	max := 0.0
	for _, in := range n.reg.ActiveInstances() {
		if f := in.Runtime().LoadStats().QueueFill; f > max {
			max = f
		}
	}
	return max
}

// forwarder drains one peer's queue, coalescing runs of items bound
// for the same (query, slot) into one numbered forward batch.
func (n *Node) forwarder(pl *peerLink) {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(int64(nameHash(pl.spec.Name)) ^ n.cfg.AdmissionSeed))
	var pending *fwdItem
	drain := func() {
		for {
			select {
			case <-pl.q:
				n.inFlight.Add(-1)
				n.forwardDrop.Add(1)
				pl.dropped.Add(1)
			default:
				return
			}
		}
	}
	for {
		var it fwdItem
		if pending != nil {
			it, pending = *pending, nil
		} else {
			select {
			case <-n.done:
				// Drain what's queued so the gauge and drop counters stay
				// conserved, then exit.
				drain()
				return
			case <-pl.stop:
				// Peer removed by a topology reload: same drain, the
				// drops are attributed to this link.
				drain()
				return
			case it = <-pl.q:
			}
		}
		body := append([]byte(nil), it.line...)
		body = append(body, '\n')
		count := 1
	coalesce:
		for count < 256 {
			select {
			case next := <-pl.q:
				if next.tenant != it.tenant || next.query != it.query || next.slot != it.slot {
					pending = &next
					break coalesce
				}
				body = append(body, next.line...)
				body = append(body, '\n')
				count++
			default:
				break coalesce
			}
		}
		n.sendBatch(pl, it, body, count, rng)
	}
}

// forwardNack is a receiver's 409 payload: its view of the slot's
// owner and fencing epoch, so the refused sender can converge instead
// of guessing.
type forwardNack struct {
	Owner string `json:"owner"`
	Epoch uint64 `json:"epoch"`
}

// sendBatch delivers one coalesced forward batch at most once. The
// batch gets a per-sender monotone ID; network errors retry the SAME
// peer with the SAME ID under capped, jittered backoff — the
// receiver's dedup window makes an ambiguous outcome (delivered but
// the ack was lost) safe to retry. Only an explicit ownership NACK
// (409) re-routes the batch, at most maxRedirects times. A batch that
// exhausts its retry or redirect budget, or whose target is declared
// down, is dropped and counted — loud, metered shedding, never
// silent loss.
func (n *Node) sendBatch(pl *peerLink, it fwdItem, body []byte, count int, rng *rand.Rand) {
	defer n.inFlight.Add(int64(-count))
	id := n.batchSeq.Add(1)
	drop := func(why string, args ...any) {
		n.forwardDrop.Add(uint64(count))
		pl.dropped.Add(uint64(count))
		n.cfg.Logf("cluster: forward batch %d (%d events) to %s dropped: %s", id, count, pl.spec.Name, fmt.Sprintf(why, args...))
	}
	attempts := 0
	redirected := 0
	for {
		if n.place.IsDown(pl.spec.Name) {
			drop("peer down")
			return
		}
		hdr := ForwardHeader{
			V:      ForwardFrameVersion,
			Sender: n.cfg.Self,
			Batch:  id,
			Tenant: it.tenant,
			Query:  it.query,
			Slot:   it.slot,
			Epoch:  n.place.Epoch(it.fp, it.slot),
			Count:  count,
		}
		frame := append(EncodeForwardHeader(hdr), body...)
		resp, err := n.post(pl.spec.Addr, "/cluster/forward", frame, "application/x-ndjson")
		if err == nil && resp.StatusCode == http.StatusOK {
			drainClose(resp)
			n.forwardedOut.Add(uint64(count))
			return
		}
		if err == nil && resp.StatusCode == http.StatusConflict {
			var nack forwardNack
			json.NewDecoder(io.LimitReader(resp.Body, 1<<12)).Decode(&nack)
			drainClose(resp)
			if nack.Owner != "" && nack.Epoch > 0 {
				n.place.AdoptOverride(SlotKey{FP: it.fp, Slot: it.slot}, nack.Owner, nack.Epoch)
			}
			redirected++
			if redirected > maxRedirects {
				drop("ownership unsettled after %d redirects", maxRedirects)
				return
			}
			n.redirects.Add(1)
			owner, ok := n.place.Owner(it.fp, it.slot)
			if !ok {
				drop("no live owner after NACK")
				return
			}
			if owner == n.cfg.Self {
				// The slot came home (failover or handoff landed it here
				// while the batch was in flight): accept it locally.
				n.acceptRedirectHome(it, body)
				return
			}
			if owner == pl.spec.Name {
				// Our view already points at the refusing peer — it is the
				// one that is stale (e.g. it rebooted and lost the
				// override). Push our placement so it catches up, then
				// retry the same peer with the same batch ID.
				n.pushPlacement(pl.spec.Name)
				continue
			}
			next, ok := n.peer(owner)
			if !ok || n.place.IsDown(owner) {
				drop("NACK re-route target %s unavailable", owner)
				return
			}
			pl = next
			continue
		}
		// Network error, or a non-OK status we can only treat as
		// transient: retry the same peer with the same batch ID.
		why := ""
		if err != nil {
			why = err.Error()
		} else {
			why = resp.Status
			drainClose(resp)
		}
		attempts++
		if attempts > n.cfg.ForwardRetries {
			drop("retries exhausted: %s", why)
			return
		}
		n.retriesTotal.Add(1)
		pl.retries.Add(1)
		backoff := n.cfg.RetryPolicy.Backoff(attempts, rng)
		t := time.NewTimer(backoff)
		select {
		case <-n.done:
			t.Stop()
			drop("node closing")
			return
		case <-pl.stop:
			t.Stop()
			drop("peer removed")
			return
		case <-t.C:
		}
	}
}

// acceptRedirectHome lands a forward batch whose slot moved back to
// this node while the batch was queued: decode and offer locally, as
// if it had never left.
func (n *Node) acceptRedirectHome(it fwdItem, body []byte) {
	in, ok := n.reg.Get(it.tenant, it.query)
	if !ok {
		n.forwardDrop.Add(1)
		return
	}
	_, kept, shed, bad := n.offerForwarded(in, it.slot, bytes.NewReader(body))
	n.redirectLocal.Add(uint64(kept))
	n.edgeShed.Add(uint64(shed))
	n.recvBadLines.Add(uint64(bad))
}

// offerForwarded decodes NDJSON event lines and offers them into one
// local slot, applying receiver-side admission (only while degraded)
// and owner-side seq stamping. Shared by HandleForward and the
// redirect-home path. Returns the offer result, how many events were
// kept (stamped and offered), how many the router gate shed, and how
// many lines were undecodable.
func (n *Node) offerForwarded(in *registry.Instance, slot int, r io.Reader) (or registry.OfferResult, kept, shed, bad int) {
	fill := -1.0
	dec := runtime.NewLineDecoder(r, 0)
	var evs []*event.Event
	for {
		e, hasTime, err := dec.Next()
		if err != nil {
			var lerr *runtime.LineError
			if errors.As(err, &lerr) {
				bad++ // bad line: sender-side bug, skip rather than poison
				continue
			}
			if err != io.EOF {
				bad++
			}
			break
		}
		if !hasTime {
			n.cfg.StampTime(e)
		}
		if n.gate.Degraded() {
			if fill < 0 {
				fill = n.localFill()
			}
			if !n.gate.Admit(fill) {
				shed++
				continue
			}
		}
		n.cfg.StampSeq(e)
		evs = append(evs, e)
	}
	or = in.OfferSlot(slot, evs)
	n.noteDispositions(or)
	return or, len(evs), shed, bad
}

// seenBatch atomically checks-and-marks one (sender, batch) pair in
// the dedup window. It reports true when the batch was already marked
// — i.e. this is a retry of a batch we have (or are currently)
// processing. Marking happens BEFORE processing so a concurrent retry
// of an in-flight batch dedups rather than double-delivering.
func (n *Node) seenBatch(sender string, batch uint64) bool {
	n.dedupMu.Lock()
	defer n.dedupMu.Unlock()
	win := n.dedup[sender]
	if win == nil {
		win = &dedupWindow{
			seen: make(map[uint64]struct{}, n.cfg.DedupWindow),
			fifo: make([]uint64, n.cfg.DedupWindow),
		}
		n.dedup[sender] = win
	}
	if _, ok := win.seen[batch]; ok {
		return true
	}
	// Evict the slot we're about to reuse.
	if old := win.fifo[win.next]; old != 0 {
		delete(win.seen, old)
	}
	win.fifo[win.next] = batch
	win.next = (win.next + 1) % len(win.fifo)
	win.seen[batch] = struct{}{}
	return false
}

// HandleForward receives forwarded events: POST /cluster/forward. The
// body is a forward frame (header line + NDJSON events; see frame.go).
// Three fences run before any event is consumed:
//
//  1. Ownership: a slot this node does not own is refused (409) —
//     accepting it would split the slot's partial-match state across
//     nodes. The NACK carries this node's placement view so the
//     sender converges instead of guessing.
//  2. Epoch: a frame carrying a NEWER epoch than this node has seen
//     means ownership changed somewhere this node hasn't heard about
//     — accepting on a stale view risks double-accepting during an
//     asymmetric partition, so it is the same 409.
//  3. Dedup: a (sender, batch) pair already in the window is a retry
//     whose original delivery succeeded but whose ack was lost; it
//     acks 200 {"dup":true} WITHOUT processing, which is what makes
//     retrying ambiguous failures safe.
func (n *Node) HandleForward(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(r.Body)
	hdr, err := readForwardHeader(br)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	in, ok := n.reg.Get(hdr.Tenant, hdr.Query)
	if !ok {
		http.Error(w, "unknown query", http.StatusNotFound)
		return
	}
	fp := in.Fingerprint()
	owner, epoch, ok := n.place.OwnerEpoch(fp, hdr.Slot)
	if !ok || owner != n.cfg.Self || hdr.Epoch > epoch {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(forwardNack{Owner: owner, Epoch: epoch})
		return
	}
	if hdr.Sender != "" && n.seenBatch(hdr.Sender, hdr.Batch) {
		n.dupBatches.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"dup":true}`+"\n")
		return
	}
	or, kept, shed, bad := n.offerForwarded(in, hdr.Slot, br)
	n.forwardedIn.Add(uint64(kept))
	n.recvShed.Add(uint64(shed))
	n.recvBadLines.Add(uint64(bad))
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"accepted":%d,"rejected":%d,"shed":%d}`+"\n",
		or.Deliveries, or.DoorRejected, shed+or.ArbiterShed+or.FloorSkipped)
}

// urlEscape covers the characters query IDs may contain; IDs are
// validated at registration, so this is belt and braces.
func urlEscape(s string) string {
	out := make([]byte, 0, len(s))
	const hex = "0123456789ABCDEF"
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '~' {
			out = append(out, c)
			continue
		}
		out = append(out, '%', hex[c>>4], hex[c&0xf])
	}
	return string(out)
}
