package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"cepshed/internal/event"
	"cepshed/internal/registry"
	"cepshed/internal/runtime"
)

// Input is one decoded, unstamped event at the ingest edge, plus
// whether its source line carried an explicit timestamp.
type Input struct {
	E       *event.Event
	HasTime bool
}

// RouteResult accounts one routed batch. The embedded OfferResult
// covers the pairs this node processed locally; the cluster fields
// cover pairs that left the node or died at the router.
type RouteResult struct {
	registry.OfferResult
	// ForwardedPairs were queued for a remote owner.
	ForwardedPairs int
	// DroppedPairs died at the router: forward queue full or owner
	// unreachable. Part of the cluster loss accounting, never silent.
	DroppedPairs int
	// ShedPairs were refused by degraded-mode router admission.
	ShedPairs int
}

type localGroup struct {
	in   *registry.Instance
	slot int
	evs  []*event.Event
}

// OfferBatch routes one ingest batch the cluster way. For each
// (event, query) pair: compute the shard slot (deterministic hash —
// identical on every node), look up the slot's owner, then either
// offer locally (stamping seq here, at the owner) or enqueue the
// event's NDJSON encoding to the owner's forwarder. Events with no
// explicit timestamp get their arrival time stamped at this edge, so
// a forwarded event keeps its true arrival time rather than its
// delivery time at the owner.
func (n *Node) OfferBatch(batch []Input) RouteResult {
	var res RouteResult
	res.Events = len(batch)
	if len(batch) == 0 {
		return res
	}
	fill := -1.0
	localFill := func() float64 {
		if fill < 0 {
			fill = n.localFill()
		}
		return fill
	}
	var groups []localGroup
	for _, item := range batch {
		e := item.E
		if !item.HasTime {
			n.cfg.StampTime(e)
		}
		var line []byte // lazy: encoded once, shared by every remote owner
		stamped := false
		routed := n.reg.RouteEach(e, func(in *registry.Instance) {
			slot := in.ShardSlot(e)
			owner, ok := n.place.Owner(in.Fingerprint(), slot)
			if !ok {
				res.DroppedPairs++
				n.forwardDrop.Add(1)
				return
			}
			if owner == n.cfg.Self {
				if !n.gate.Admit(localFill()) {
					res.ShedPairs++
					return
				}
				if !stamped {
					n.cfg.StampSeq(e)
					stamped = true
				}
				gi := -1
				for i := range groups {
					if groups[i].in == in && groups[i].slot == slot {
						gi = i
						break
					}
				}
				if gi < 0 {
					groups = append(groups, localGroup{in: in, slot: slot})
					gi = len(groups) - 1
				}
				groups[gi].evs = append(groups[gi].evs, e)
				return
			}
			pl, ok := n.peers[owner]
			if !ok || n.place.IsDown(owner) {
				res.DroppedPairs++
				n.forwardDrop.Add(1)
				return
			}
			if line == nil {
				line = runtime.EncodeEvent(e)
			}
			spec := in.Spec()
			select {
			case pl.q <- fwdItem{tenant: spec.Tenant, query: spec.Name, slot: slot, line: line}:
				n.inFlight.Add(1)
				res.ForwardedPairs++
			default:
				res.DroppedPairs++
				n.forwardDrop.Add(1)
			}
		})
		if routed == 0 {
			res.Unrouted++
			n.reg.NoteUnrouted(1)
		}
	}
	for i := range groups {
		or := groups[i].in.OfferSlot(groups[i].slot, groups[i].evs)
		res.Deliveries += or.Deliveries
		res.DoorRejected += or.DoorRejected
		res.ArbiterShed += or.ArbiterShed
		res.FloorSkipped += or.FloorSkipped
	}
	return res
}

// localFill is the max aggregate queue fill across local runtimes —
// the signal degraded-mode router admission keys on.
func (n *Node) localFill() float64 {
	max := 0.0
	for _, in := range n.reg.ActiveInstances() {
		if f := in.Runtime().LoadStats().QueueFill; f > max {
			max = f
		}
	}
	return max
}

// forwarder drains one peer's queue, coalescing runs of items bound
// for the same (query, slot) into one POST /cluster/forward.
func (n *Node) forwarder(pl *peerLink) {
	defer n.wg.Done()
	var pending *fwdItem
	for {
		var it fwdItem
		if pending != nil {
			it, pending = *pending, nil
		} else {
			select {
			case <-n.done:
				// Drain what's queued so the gauge and drop counters stay
				// conserved, then exit.
				for {
					select {
					case <-pl.q:
						n.inFlight.Add(-1)
						n.forwardDrop.Add(1)
					default:
						return
					}
				}
			case it = <-pl.q:
			}
		}
		body := append([]byte(nil), it.line...)
		body = append(body, '\n')
		count := 1
	coalesce:
		for count < 256 {
			select {
			case next := <-pl.q:
				if next.tenant != it.tenant || next.query != it.query || next.slot != it.slot {
					pending = &next
					break coalesce
				}
				body = append(body, next.line...)
				body = append(body, '\n')
				count++
			default:
				break coalesce
			}
		}
		n.sendForward(pl, it, body, count)
	}
}

func (n *Node) sendForward(pl *peerLink, it fwdItem, body []byte, count int) {
	defer n.inFlight.Add(int64(-count))
	if n.place.IsDown(pl.spec.Name) {
		n.forwardDrop.Add(uint64(count))
		return
	}
	path := fmt.Sprintf("/cluster/forward?tenant=%s&query=%s&slot=%d",
		urlEscape(it.tenant), urlEscape(it.query), it.slot)
	resp, err := n.post(pl.spec.Addr, path, body, "application/x-ndjson")
	if err != nil {
		n.forwardDrop.Add(uint64(count))
		n.cfg.Logf("cluster: forward to %s: %v", pl.spec.Name, err)
		return
	}
	drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		n.forwardDrop.Add(uint64(count))
		n.cfg.Logf("cluster: forward to %s: %s", pl.spec.Name, resp.Status)
		return
	}
	n.forwardedOut.Add(uint64(count))
}

// HandleForward receives forwarded events: POST /cluster/forward?
// tenant=&query=&slot=. The body is NDJSON event lines; this node —
// the slot's owner — stamps each event's sequence number on arrival.
// A slot this node does not own is refused (409): accepting it would
// split the slot's partial-match state across nodes, and blindly
// re-forwarding could loop during a placement transition.
func (n *Node) HandleForward(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	tenant, query := q.Get("tenant"), q.Get("query")
	slot, err := strconv.Atoi(q.Get("slot"))
	if err != nil {
		http.Error(w, "bad slot", http.StatusBadRequest)
		return
	}
	in, ok := n.reg.Get(tenant, query)
	if !ok {
		http.Error(w, "unknown query", http.StatusNotFound)
		return
	}
	if owner, ok := n.place.Owner(in.Fingerprint(), slot); !ok || owner != n.cfg.Self {
		http.Error(w, "not the owner", http.StatusConflict)
		return
	}
	fill := -1.0
	dec := runtime.NewLineDecoder(r.Body, 0)
	var evs []*event.Event
	shed := 0
	for {
		e, hasTime, err := dec.Next()
		if err != nil {
			var lerr *runtime.LineError
			if errors.As(err, &lerr) {
				continue // bad line: sender-side bug, skip rather than poison
			}
			if err != io.EOF {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			break
		}
		if !hasTime {
			n.cfg.StampTime(e)
		}
		if n.gate.Degraded() {
			if fill < 0 {
				fill = n.localFill()
			}
			if !n.gate.Admit(fill) {
				shed++
				continue
			}
		}
		n.cfg.StampSeq(e)
		evs = append(evs, e)
	}
	n.forwardedIn.Add(uint64(len(evs)))
	or := in.OfferSlot(slot, evs)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"accepted":%d,"rejected":%d,"shed":%d}`+"\n",
		or.Deliveries, or.DoorRejected, shed+or.ArbiterShed+or.FloorSkipped)
}

// urlEscape covers the characters query IDs may contain; IDs are
// validated at registration, so this is belt and braces.
func urlEscape(s string) string {
	out := make([]byte, 0, len(s))
	const hex = "0123456789ABCDEF"
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '~' {
			out = append(out, c)
			continue
		}
		out = append(out, '%', hex[c>>4], hex[c&0xf])
	}
	return string(out)
}
