package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/registry"
	"cepshed/internal/shed"
)

// Config wires a Node into its host process.
type Config struct {
	// Self is this node's name; it must appear in Topology.
	Self string
	// Topology is the static membership, identical on every node.
	Topology Topology
	// Registry is the local serving core. Every node registers the same
	// queries; placement decides which slots each node actually runs.
	Registry *registry.Registry
	// StampTime assigns a monotone arrival timestamp to an event whose
	// source line carried none. It runs at the INGEST edge, so a
	// forwarded event keeps its true arrival time.
	StampTime func(e *event.Event)
	// StampSeq assigns the node-local sequence number. It runs only at
	// the slot's OWNER — forwarded events travel with time but no seq —
	// so each node's WAL sequence space stays monotone under its own
	// counter regardless of which node ingested the event.
	StampSeq func(e *event.Event)
	// BumpSeq raises the node's sequence counter to at least min —
	// called after an import so events stamped after the migrated
	// state slot in ABOVE the imported snapshot's floor, never below it
	// (below would make the next recovery's WAL filter drop them).
	BumpSeq func(min uint64)
	// Detector tunes failure detection; Probe is filled in by the node.
	Detector DetectorConfig
	// ForwardBuf is the per-peer forward queue capacity in events
	// (default 4096). A full queue sheds rather than blocks ingest.
	ForwardBuf int
	// HTTPTimeout bounds each peer call (default 2s; handoffs get 10×).
	HTTPTimeout time.Duration
	// AuthToken, when set, is sent as a bearer token on mutating peer
	// calls (forward, handoff, placement) — pair it with the server's
	// -admin-token so cluster traffic passes the same door.
	AuthToken string
	// AdmissionSeed fixes the degraded-mode router gate's sampling.
	AdmissionSeed int64
	Logf          func(format string, args ...any)
}

// Node is the cluster runtime for one process: placement view, failure
// detector, forwarders, and the handoff/failover control plane. The
// host HTTP server mounts Handle* under /cluster/*.
type Node struct {
	cfg   Config
	self  NodeSpec
	reg   *registry.Registry
	place *Placement
	det   *Detector
	gate  *shed.RouterAdmission
	hc    *http.Client

	peers map[string]*peerLink

	// moveMu serializes the control plane (planned moves, failovers):
	// concurrent migrations of the same slot would race export against
	// import.
	moveMu sync.Mutex

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	// Counters. inFlight is the handoff_in_flight gauge: events queued
	// for forwarding plus handoff frames shipped but not yet resolved.
	forwardedOut  atomic.Uint64 // pairs sent to a peer
	forwardedIn   atomic.Uint64 // pairs received from peers
	forwardDrop   atomic.Uint64 // pairs dropped: queue full, peer down, send failed
	handoffsOut   atomic.Uint64 // planned handoffs shipped successfully
	handoffsIn    atomic.Uint64 // handoffs imported (planned or not)
	handoffFailed atomic.Uint64
	takeovers     atomic.Uint64 // slots adopted by failover
	failovers     atomic.Uint64 // dead-peer events handled
	inFlight      atomic.Int64
}

type peerLink struct {
	spec NodeSpec
	q    chan fwdItem
}

type fwdItem struct {
	tenant, query string
	slot          int
	line          []byte // NDJSON-encoded event, newline not included
}

// New builds a Node; Start launches its goroutines.
func New(cfg Config) (*Node, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	self, ok := cfg.Topology.Find(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self %q not in topology", cfg.Self)
	}
	if cfg.Registry == nil || cfg.StampTime == nil || cfg.StampSeq == nil {
		return nil, fmt.Errorf("cluster: Registry, StampTime, and StampSeq are required")
	}
	if cfg.ForwardBuf <= 0 {
		cfg.ForwardBuf = 4096
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:   cfg,
		self:  self,
		reg:   cfg.Registry,
		place: NewPlacement(cfg.Topology.Names()),
		gate:  shed.NewRouterAdmission(cfg.AdmissionSeed),
		hc:    &http.Client{Timeout: cfg.HTTPTimeout},
		peers: map[string]*peerLink{},
		done:  make(chan struct{}),
	}
	for _, p := range cfg.Topology.Nodes {
		if p.Name == cfg.Self {
			continue
		}
		n.peers[p.Name] = &peerLink{spec: p, q: make(chan fwdItem, cfg.ForwardBuf)}
	}
	det := cfg.Detector
	det.Probe = n.probe
	det.OnDown = n.onPeerDown
	det.OnUp = n.onPeerUp
	if det.Logf == nil {
		det.Logf = cfg.Logf
	}
	peerSpecs := make([]NodeSpec, 0, len(n.peers))
	for _, pl := range n.peers {
		peerSpecs = append(peerSpecs, pl.spec)
	}
	n.det = NewDetector(det, peerSpecs)
	return n, nil
}

// Start launches the detector, the per-peer forwarders, and an initial
// placement pull so a rejoining node learns overrides recorded while
// it was dead (its old slots may have moved; claiming them back would
// split ownership).
func (n *Node) Start() {
	n.det.Start()
	for _, pl := range n.peers {
		n.wg.Add(1)
		go n.forwarder(pl)
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.pullPlacement()
	}()
}

// Close stops the detector and forwarders. Queued forward items are
// dropped (counted). The host must stop offering batches first —
// OfferBatch after Close drops every remote pair.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.det.Close()
	close(n.done)
	n.wg.Wait()
}

// Degraded reports whether any peer is currently considered down.
func (n *Node) Degraded() bool { return n.place.AnyDown() }

// Placement exposes the node's placement view (status, tests).
func (n *Node) Placement() *Placement { return n.place }

// Self returns this node's name.
func (n *Node) Self() string { return n.cfg.Self }

func (n *Node) probe(spec NodeSpec) error {
	req, err := http.NewRequest(http.MethodGet, "http://"+spec.Addr+"/cluster/health", nil)
	if err != nil {
		return err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: %s", resp.Status)
	}
	return nil
}

func (n *Node) onPeerDown(name string) {
	n.place.SetDown(name, true)
	n.gate.SetDegraded(true)
	n.failovers.Add(1)
	go n.failover(name)
}

func (n *Node) onPeerUp(name string) {
	n.place.SetDown(name, false)
	n.gate.SetDegraded(n.place.AnyDown())
	// The revived peer missed every override recorded while it was
	// dead — push our view so it doesn't reclaim migrated slots.
	go n.pushPlacement(name)
}

// ---- HTTP client helpers ----

func (n *Node) post(addr, path string, body []byte, contentType string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if n.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+n.cfg.AuthToken)
	}
	return n.hc.Do(req)
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

// ---- placement gossip ----

type placementMsg struct {
	From      string     `json:"from"`
	Version   uint64     `json:"version"`
	Overrides []Override `json:"overrides"`
}

func (n *Node) placementBody() []byte {
	v, ovs := n.place.Overrides()
	b, _ := json.Marshal(placementMsg{From: n.cfg.Self, Version: v, Overrides: ovs})
	return b
}

func (n *Node) pushPlacement(names ...string) {
	body := n.placementBody()
	targets := names
	if len(targets) == 0 {
		for name := range n.peers {
			targets = append(targets, name)
		}
	}
	for _, name := range targets {
		pl, ok := n.peers[name]
		if !ok || n.place.IsDown(name) {
			continue
		}
		resp, err := n.post(pl.spec.Addr, "/cluster/placement", body, "application/json")
		if err != nil {
			n.cfg.Logf("cluster: placement push to %s: %v", name, err)
			continue
		}
		drainClose(resp)
	}
}

func (n *Node) pullPlacement() {
	for name, pl := range n.peers {
		req, err := http.NewRequest(http.MethodGet, "http://"+pl.spec.Addr+"/cluster/placement", nil)
		if err != nil {
			continue
		}
		resp, err := n.hc.Do(req)
		if err != nil {
			continue
		}
		var msg placementMsg
		err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&msg)
		resp.Body.Close()
		if err != nil {
			n.cfg.Logf("cluster: placement pull from %s: %v", name, err)
			continue
		}
		n.place.Merge(msg.Overrides)
	}
}

// ---- HTTP handlers (mounted by the host server under /cluster/*) ----

// HandleHealth answers heartbeats: GET /cluster/health.
func (n *Node) HandleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"node":%q,"version":%d}`+"\n", n.cfg.Self, n.place.Version())
}

// HandlePlacement serves GET (our override map) and POST (merge a
// peer's) on /cluster/placement.
func (n *Node) HandlePlacement(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		w.Write(n.placementBody())
	case http.MethodPost:
		var msg placementMsg
		if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&msg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n.place.Merge(msg.Overrides)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Status is the /cluster payload.
type Status struct {
	Self     string       `json:"self"`
	Degraded bool         `json:"degraded"`
	Peers    []PeerStatus `json:"peers"`
	Placement struct {
		Version   uint64 `json:"version"`
		Overrides int    `json:"overrides"`
	} `json:"placement"`
	ForwardedOut  uint64 `json:"forwarded_out"`
	ForwardedIn   uint64 `json:"forwarded_in"`
	ForwardDrop   uint64 `json:"forward_dropped"`
	RouterShed    uint64 `json:"router_shed"`
	HandoffsOut   uint64 `json:"handoffs_out"`
	HandoffsIn    uint64 `json:"handoffs_in"`
	HandoffFailed uint64 `json:"handoffs_failed"`
	Takeovers     uint64 `json:"takeovers"`
	Failovers     uint64 `json:"failovers"`
	InFlight      int64  `json:"handoff_in_flight"`
}

// Status snapshots the node's cluster state.
func (n *Node) Status() Status {
	var s Status
	s.Self = n.cfg.Self
	s.Degraded = n.Degraded()
	s.Peers = n.det.Status()
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].Name < s.Peers[j].Name })
	v, ovs := n.place.Overrides()
	s.Placement.Version = v
	s.Placement.Overrides = len(ovs)
	s.ForwardedOut = n.forwardedOut.Load()
	s.ForwardedIn = n.forwardedIn.Load()
	s.ForwardDrop = n.forwardDrop.Load()
	s.RouterShed = n.gate.Dropped()
	s.HandoffsOut = n.handoffsOut.Load()
	s.HandoffsIn = n.handoffsIn.Load()
	s.HandoffFailed = n.handoffFailed.Load()
	s.Takeovers = n.takeovers.Load()
	s.Failovers = n.failovers.Load()
	s.InFlight = n.inFlight.Load()
	return s
}

// HandleStatus serves GET /cluster.
func (n *Node) HandleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.Status())
}

// HandleClusterStats serves GET /cluster/stats: this node's /stats
// plus every reachable peer's, keyed by node name — the rolled-up
// cluster view a dashboard scrapes once.
func (n *Node) HandleClusterStats(localStats func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		nodes := map[string]json.RawMessage{}
		if b, err := json.Marshal(localStats()); err == nil {
			nodes[n.cfg.Self] = b
		}
		for name, pl := range n.peers {
			if n.place.IsDown(name) {
				continue
			}
			req, err := http.NewRequest(http.MethodGet, "http://"+pl.spec.Addr+"/stats", nil)
			if err != nil {
				continue
			}
			resp, err := n.hc.Do(req)
			if err != nil {
				continue
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK && json.Valid(b) {
				nodes[name] = b
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"cluster": n.Status(), "nodes": nodes})
	}
}
