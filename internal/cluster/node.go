package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cepshed/internal/event"
	"cepshed/internal/registry"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

// Config wires a Node into its host process.
type Config struct {
	// Self is this node's name; it must appear in Topology.
	Self string
	// Topology is the initial membership, identical on every node.
	// ReloadTopology applies membership changes at runtime.
	Topology Topology
	// Registry is the local serving core. Every node registers the same
	// queries; placement decides which slots each node actually runs.
	Registry *registry.Registry
	// StampTime assigns a monotone arrival timestamp to an event whose
	// source line carried none. It runs at the INGEST edge, so a
	// forwarded event keeps its true arrival time.
	StampTime func(e *event.Event)
	// StampSeq assigns the node-local sequence number. It runs only at
	// the slot's OWNER — forwarded events travel with time but no seq —
	// so each node's WAL sequence space stays monotone under its own
	// counter regardless of which node ingested the event.
	StampSeq func(e *event.Event)
	// BumpSeq raises the node's sequence counter to at least min —
	// called after an import so events stamped after the migrated
	// state slot in ABOVE the imported snapshot's floor, never below it
	// (below would make the next recovery's WAL filter drop them).
	BumpSeq func(min uint64)
	// Detector tunes failure detection; Probe is filled in by the node.
	Detector DetectorConfig
	// ForwardBuf is the per-peer forward queue capacity in events
	// (default 4096). A full queue sheds rather than blocks ingest.
	ForwardBuf int
	// HTTPTimeout bounds each peer call (default 2s; handoffs get 10×).
	HTTPTimeout time.Duration
	// Transport, when set, replaces the default HTTP transport for
	// every peer call — heartbeats, forwards, gossip, handoffs. The
	// chaos tests wrap it in fault.NetChaos to inject partitions.
	Transport http.RoundTripper
	// ForwardRetries bounds re-sends of one forward batch after a
	// network error (default 4 retries after the first attempt).
	// Retries go to the SAME peer with the SAME batch ID — the
	// receiver's dedup window makes them idempotent; only an explicit
	// ownership NACK re-routes a batch.
	ForwardRetries int
	// RetryPolicy shapes the capped, jittered backoff between forward
	// retries (zero value: supervisor defaults, 10ms base / 2s cap).
	RetryPolicy runtime.RestartPolicy
	// DedupWindow is how many recent batch IDs the forward receiver
	// remembers per sender (default 4096). A batch must fall out of
	// this window — ForwardRetries × coalesced batches later — before
	// a retry could double-deliver.
	DedupWindow int
	// AuthToken, when set, is sent as a bearer token on mutating peer
	// calls (forward, handoff, placement) — pair it with the server's
	// -admin-token so cluster traffic passes the same door.
	AuthToken string
	// AdmissionSeed fixes the degraded-mode router gate's sampling.
	AdmissionSeed int64
	Logf          func(format string, args ...any)
}

// Node is the cluster runtime for one process: placement view, failure
// detector, forwarders, and the handoff/failover control plane. The
// host HTTP server mounts Handle* under /cluster/*.
type Node struct {
	cfg   Config
	self  NodeSpec
	reg   *registry.Registry
	place *Placement
	det   *Detector
	gate  *shed.RouterAdmission
	hc    *http.Client

	// peerMu guards peers and cfg.Topology against topology reloads.
	peerMu sync.RWMutex
	peers  map[string]*peerLink

	// moveMu serializes the control plane (planned moves, failovers,
	// topology reloads): concurrent migrations of the same slot would
	// race export against import.
	moveMu sync.Mutex

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	// batchSeq numbers outgoing forward batches; (Self, batch) is the
	// receiver-side dedup key, so it must never repeat within a
	// process lifetime.
	batchSeq atomic.Uint64

	// dedup is the receiver-side window of recently accepted batch IDs
	// per sender; handoffAcks is the same idea for shipped shards
	// (mover.go), sharing the lock.
	dedupMu        sync.Mutex
	dedup          map[string]*dedupWindow
	handoffAcks    map[string]handoffResp
	handoffAckFIFO []string

	// Counters. inFlight is the handoff_in_flight gauge: events queued
	// for forwarding plus handoff frames shipped but not yet resolved.
	forwardedOut  atomic.Uint64 // pairs acked by a peer
	forwardedIn   atomic.Uint64 // pairs received from peers (non-shed)
	forwardDrop   atomic.Uint64 // router_dropped_total: pairs dropped at the router
	retriesTotal  atomic.Uint64 // forward batch re-sends after network errors
	redirects     atomic.Uint64 // forward batches re-routed after an ownership NACK
	dupBatches    atomic.Uint64 // retried batches this node refused as duplicates
	handoffsOut   atomic.Uint64 // planned handoffs shipped successfully
	handoffsIn    atomic.Uint64 // handoffs imported (planned or not)
	handoffFailed atomic.Uint64
	takeovers     atomic.Uint64 // slots adopted by failover
	failovers     atomic.Uint64 // dead-peer events handled
	inFlight      atomic.Int64

	// Audit ledger counters (see audit.go): every (event, query) pair
	// that enters the cluster at this node's edge, and every final
	// disposition recorded at this node, wherever the pair came from.
	edgePairs     atomic.Uint64 // pairs created at this node's ingest edge
	edgeShed      atomic.Uint64 // router-admission refusals at the edge
	recvShed      atomic.Uint64 // router-admission refusals of forwarded events
	recvBadLines  atomic.Uint64 // undecodable forwarded lines (sender bug)
	redirectLocal atomic.Uint64 // forwarded pairs that came back home after a NACK
	delivered     atomic.Uint64 // pairs delivered into an engine queue here
	doorRejected  atomic.Uint64 // pairs refused by the shard door here
	arbiterShed   atomic.Uint64 // pairs shed by the arbiter gate here
	floorSkipped  atomic.Uint64 // pairs below the recovery floor here
	unroutedPairs atomic.Uint64 // events matching no registered query
}

type peerLink struct {
	spec NodeSpec
	q    chan fwdItem
	stop chan struct{} // closed when the peer is removed by a reload

	dropped atomic.Uint64 // pairs dropped on this link (router_dropped per peer)
	retries atomic.Uint64 // batch re-sends on this link
}

type fwdItem struct {
	tenant, query string
	fp            uint64
	slot          int
	line          []byte // NDJSON-encoded event, newline not included
}

// dedupWindow remembers the last cap batch IDs from one sender.
type dedupWindow struct {
	seen map[uint64]struct{}
	fifo []uint64
	next int
}

// New builds a Node; Start launches its goroutines.
func New(cfg Config) (*Node, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	self, ok := cfg.Topology.Find(cfg.Self)
	if !ok {
		return nil, fmt.Errorf("cluster: self %q not in topology", cfg.Self)
	}
	if cfg.Registry == nil || cfg.StampTime == nil || cfg.StampSeq == nil {
		return nil, fmt.Errorf("cluster: Registry, StampTime, and StampSeq are required")
	}
	if cfg.ForwardBuf <= 0 {
		cfg.ForwardBuf = 4096
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 2 * time.Second
	}
	if cfg.ForwardRetries <= 0 {
		cfg.ForwardRetries = 4
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 4096
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	hc := &http.Client{Timeout: cfg.HTTPTimeout}
	if cfg.Transport != nil {
		hc.Transport = cfg.Transport
	}
	n := &Node{
		cfg:   cfg,
		self:  self,
		reg:   cfg.Registry,
		place: NewPlacement(cfg.Topology.Names()),
		gate:  shed.NewRouterAdmission(cfg.AdmissionSeed),
		hc:    hc,
		peers: map[string]*peerLink{},
		dedup: map[string]*dedupWindow{},
		done:  make(chan struct{}),
	}
	for _, p := range cfg.Topology.Nodes {
		if p.Name == cfg.Self {
			continue
		}
		n.peers[p.Name] = newPeerLink(p, cfg.ForwardBuf)
	}
	det := cfg.Detector
	det.Probe = n.probe
	det.OnDown = n.onPeerDown
	det.OnUp = n.onPeerUp
	if det.Logf == nil {
		det.Logf = cfg.Logf
	}
	peerSpecs := make([]NodeSpec, 0, len(n.peers))
	for _, pl := range n.peers {
		peerSpecs = append(peerSpecs, pl.spec)
	}
	n.det = NewDetector(det, peerSpecs)
	return n, nil
}

func newPeerLink(spec NodeSpec, buf int) *peerLink {
	return &peerLink{spec: spec, q: make(chan fwdItem, buf), stop: make(chan struct{})}
}

// Start launches the detector, the per-peer forwarders, and an initial
// placement pull so a rejoining node learns overrides recorded while
// it was dead (its old slots may have moved; claiming them back would
// split ownership).
func (n *Node) Start() {
	n.det.Start()
	n.peerMu.RLock()
	for _, pl := range n.peers {
		n.wg.Add(1)
		go n.forwarder(pl)
	}
	n.peerMu.RUnlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.pullPlacement()
	}()
}

// Close stops the detector and forwarders. Queued forward items are
// dropped (counted). The host must stop offering batches first —
// OfferBatch after Close drops every remote pair.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.det.Close()
	close(n.done)
	n.wg.Wait()
}

// Degraded reports whether any peer is currently considered down.
func (n *Node) Degraded() bool { return n.place.AnyDown() }

// Placement exposes the node's placement view (status, tests).
func (n *Node) Placement() *Placement { return n.place }

// Self returns this node's name.
func (n *Node) Self() string { return n.cfg.Self }

// peer returns the live link for a peer name.
func (n *Node) peer(name string) (*peerLink, bool) {
	n.peerMu.RLock()
	defer n.peerMu.RUnlock()
	pl, ok := n.peers[name]
	return pl, ok
}

// peerLinks snapshots the current links.
func (n *Node) peerLinks() []*peerLink {
	n.peerMu.RLock()
	defer n.peerMu.RUnlock()
	out := make([]*peerLink, 0, len(n.peers))
	for _, pl := range n.peers {
		out = append(out, pl)
	}
	return out
}

// topology returns the current (possibly reloaded) membership.
func (n *Node) topology() Topology {
	n.peerMu.RLock()
	defer n.peerMu.RUnlock()
	return n.cfg.Topology
}

func (n *Node) probe(spec NodeSpec) error {
	req, err := http.NewRequest(http.MethodGet, "http://"+spec.Addr+"/cluster/health", nil)
	if err != nil {
		return err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: %s", resp.Status)
	}
	return nil
}

func (n *Node) onPeerDown(name string) {
	n.place.SetDown(name, true)
	n.gate.SetDegraded(true)
	n.failovers.Add(1)
	go n.failover(name)
}

func (n *Node) onPeerUp(name string) {
	n.place.SetDown(name, false)
	n.gate.SetDegraded(n.place.AnyDown())
	// The revived peer missed every override recorded while it was
	// dead — push our view so it doesn't reclaim migrated slots.
	go n.pushPlacement(name)
}

// ---- HTTP client helpers ----

func (n *Node) post(addr, path string, body []byte, contentType string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if n.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+n.cfg.AuthToken)
	}
	return n.hc.Do(req)
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}

// ---- placement gossip ----

type placementMsg struct {
	From      string     `json:"from"`
	Version   uint64     `json:"version"`
	Overrides []Override `json:"overrides"`
}

func (n *Node) placementBody() []byte {
	v, ovs := n.place.Overrides()
	b, _ := json.Marshal(placementMsg{From: n.cfg.Self, Version: v, Overrides: ovs})
	return b
}

func (n *Node) pushPlacement(names ...string) {
	body := n.placementBody()
	targets := names
	if len(targets) == 0 {
		for _, pl := range n.peerLinks() {
			targets = append(targets, pl.spec.Name)
		}
	}
	for _, name := range targets {
		pl, ok := n.peer(name)
		if !ok || n.place.IsDown(name) {
			continue
		}
		resp, err := n.post(pl.spec.Addr, "/cluster/placement", body, "application/json")
		if err != nil {
			n.cfg.Logf("cluster: placement push to %s: %v", name, err)
			continue
		}
		drainClose(resp)
	}
}

func (n *Node) pullPlacement() {
	for _, pl := range n.peerLinks() {
		req, err := http.NewRequest(http.MethodGet, "http://"+pl.spec.Addr+"/cluster/placement", nil)
		if err != nil {
			continue
		}
		resp, err := n.hc.Do(req)
		if err != nil {
			continue
		}
		var msg placementMsg
		err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&msg)
		resp.Body.Close()
		if err != nil {
			n.cfg.Logf("cluster: placement pull from %s: %v", pl.spec.Name, err)
			continue
		}
		n.place.Merge(msg.Overrides)
	}
}

// ---- HTTP handlers (mounted by the host server under /cluster/*) ----

// HandleHealth answers heartbeats: GET /cluster/health.
func (n *Node) HandleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"node":%q,"version":%d}`+"\n", n.cfg.Self, n.place.Version())
}

// HandlePeerView answers GET /cluster/peerview?peer=X with this node's
// detector view of X — the death-confirmation vote a survivor collects
// before failing X over. Asking about self (or an unknown name) counts
// as "up": an unconfirmed death must block failover, not permit it.
func (n *Node) HandlePeerView(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("peer")
	up := true
	if name != n.cfg.Self {
		if u, known := n.det.PeerUp(name); known {
			up = u
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"peer":%q,"up":%v}`+"\n", name, up)
}

// HandlePlacement serves GET (our override map) and POST (merge a
// peer's) on /cluster/placement.
func (n *Node) HandlePlacement(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		w.Write(n.placementBody())
	case http.MethodPost:
		var msg placementMsg
		if err := json.NewDecoder(io.LimitReader(r.Body, 4<<20)).Decode(&msg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n.place.Merge(msg.Overrides)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// PeerForwardStatus is one link's forwarding counters, for /cluster
// and the per-peer router_dropped_total metric.
type PeerForwardStatus struct {
	Name    string `json:"name"`
	Queue   int    `json:"queue"`
	Dropped uint64 `json:"dropped"`
	Retries uint64 `json:"retries"`
}

// Status is the /cluster payload.
type Status struct {
	Self      string       `json:"self"`
	Degraded  bool         `json:"degraded"`
	Peers     []PeerStatus `json:"peers"`
	Placement struct {
		Version   uint64 `json:"version"`
		Overrides int    `json:"overrides"`
	} `json:"placement"`
	ForwardedOut  uint64              `json:"forwarded_out"`
	ForwardedIn   uint64              `json:"forwarded_in"`
	ForwardDrop   uint64              `json:"forward_dropped"`
	Retries       uint64              `json:"forward_retries"`
	Redirects     uint64              `json:"forward_redirects"`
	DupBatches    uint64              `json:"dup_batches"`
	RouterShed    uint64              `json:"router_shed"`
	HandoffsOut   uint64              `json:"handoffs_out"`
	HandoffsIn    uint64              `json:"handoffs_in"`
	HandoffFailed uint64              `json:"handoffs_failed"`
	Takeovers     uint64              `json:"takeovers"`
	Failovers     uint64              `json:"failovers"`
	InFlight      int64               `json:"handoff_in_flight"`
	PeerForwards  []PeerForwardStatus `json:"peer_forwards"`
}

// Status snapshots the node's cluster state.
func (n *Node) Status() Status {
	var s Status
	s.Self = n.cfg.Self
	s.Degraded = n.Degraded()
	s.Peers = n.det.Status()
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].Name < s.Peers[j].Name })
	v, ovs := n.place.Overrides()
	s.Placement.Version = v
	s.Placement.Overrides = len(ovs)
	s.ForwardedOut = n.forwardedOut.Load()
	s.ForwardedIn = n.forwardedIn.Load()
	s.ForwardDrop = n.forwardDrop.Load()
	s.Retries = n.retriesTotal.Load()
	s.Redirects = n.redirects.Load()
	s.DupBatches = n.dupBatches.Load()
	s.RouterShed = n.gate.Dropped()
	s.HandoffsOut = n.handoffsOut.Load()
	s.HandoffsIn = n.handoffsIn.Load()
	s.HandoffFailed = n.handoffFailed.Load()
	s.Takeovers = n.takeovers.Load()
	s.Failovers = n.failovers.Load()
	s.InFlight = n.inFlight.Load()
	for _, pl := range n.peerLinks() {
		s.PeerForwards = append(s.PeerForwards, PeerForwardStatus{
			Name:    pl.spec.Name,
			Queue:   len(pl.q),
			Dropped: pl.dropped.Load(),
			Retries: pl.retries.Load(),
		})
	}
	sort.Slice(s.PeerForwards, func(i, j int) bool { return s.PeerForwards[i].Name < s.PeerForwards[j].Name })
	return s
}

// HandleStatus serves GET /cluster.
func (n *Node) HandleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(n.Status())
}

// HandleClusterStats serves GET /cluster/stats: this node's /stats
// plus every peer's, fetched concurrently and keyed by node name — the
// rolled-up cluster view a dashboard scrapes once. Peers that cannot
// be reached (down, partitioned, or slow) degrade the result to a
// partial one: their names land in `unreachable` instead of failing
// the whole rollup.
func (n *Node) HandleClusterStats(localStats func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		links := n.peerLinks()
		type peerResult struct {
			name string
			body json.RawMessage
		}
		results := make(chan peerResult, len(links))
		for _, pl := range links {
			go func(pl *peerLink) {
				req, err := http.NewRequest(http.MethodGet, "http://"+pl.spec.Addr+"/stats", nil)
				if err != nil {
					results <- peerResult{name: pl.spec.Name}
					return
				}
				resp, err := n.hc.Do(req)
				if err != nil {
					results <- peerResult{name: pl.spec.Name}
					return
				}
				b, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(b) {
					results <- peerResult{name: pl.spec.Name}
					return
				}
				results <- peerResult{name: pl.spec.Name, body: b}
			}(pl)
		}
		nodes := map[string]json.RawMessage{}
		if b, err := json.Marshal(localStats()); err == nil {
			nodes[n.cfg.Self] = b
		}
		unreachable := []string{}
		for range links {
			res := <-results
			if res.body == nil {
				unreachable = append(unreachable, res.name)
				continue
			}
			nodes[res.name] = res.body
		}
		sort.Strings(unreachable)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"cluster":     n.Status(),
			"nodes":       nodes,
			"unreachable": unreachable,
		})
	}
}
