package checkpoint

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"encoding/binary"

	"cepshed/internal/event"
)

// Config configures durability for a runtime.
type Config struct {
	// Dir is the state directory; one file family per shard plus the
	// dead-letter checkpoint live in it.
	Dir string
	// EveryEvents is the snapshot interval in processed events per shard
	// (default 32768). A snapshot bounds WAL replay time after a crash;
	// it does NOT bound data loss — that is the flush policy's job — so
	// the default leans toward cheap steady-state over instant recovery
	// (replaying 32k events takes tens of milliseconds).
	EveryEvents int
	// FlushEvery bounds how many WAL records may sit in the write buffer
	// before a flush (default 1024). Together with FlushBytes and
	// FlushInterval it defines one flush group: match records join the
	// group instead of forcing their own flush, and the shard releases
	// the buffered matches only once the single covering flush has
	// happened (group commit). The loss window is bounded by whichever
	// limit closes the group first — under load that is FlushBytes or
	// FlushEvery, under a trickle FlushInterval. FlushEvery = 1
	// degenerates to a flush per record, the pre-group-commit behavior.
	FlushEvery int
	// FlushBytes bounds the buffered byte count before a flush (default
	// 48 KiB). It must stay below the writer's 64 KiB buffer: an
	// invisible bufio spill would make match records durable while the
	// shard still holds their deliveries, and a crash in that state
	// widens the undelivered-match window.
	FlushBytes int
	// FlushInterval bounds how long a record may sit buffered (default
	// 2ms). Checked on every append and on the shard's batch boundary —
	// there is no timer goroutine, so an idle shard relies on the batch
	// drain's idle flush instead.
	FlushInterval time.Duration
	// Fsync syncs WAL flushes and snapshot writes to the device. Off by
	// default: the contract then covers process crashes, not power loss
	// (docs/DURABILITY.md).
	Fsync bool
	// OnStage, when set, runs at named points of the snapshot save
	// protocol ("encoded", "tmp-written", "renamed", "rotated"). It
	// exists for fault injection: a panic here models a crash at that
	// point of the protocol. Setting OnStage forces synchronous saves
	// (see SyncSave) so the whole protocol runs on the shard goroutine,
	// where an injected panic is caught by the supervisor.
	OnStage func(shard int, stage string)
	// SyncSave forces the shard to run the full snapshot protocol
	// (encode, write, rename, rotate) inline on its own goroutine,
	// pausing event processing for the duration — the pre-async
	// behavior. Off by default: snapshots are captured by reference and
	// written on a background goroutine (docs/PERFORMANCE.md). Implied
	// by OnStage != nil.
	SyncSave bool
}

// WithDefaults returns the config with zero fields defaulted.
func (c Config) WithDefaults() Config {
	if c.EveryEvents <= 0 {
		c.EveryEvents = 32768
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 1024
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 48 << 10
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	return c
}

// LoadResult is what a shard recovers from disk.
type LoadResult struct {
	// State is the newest decodable snapshot, nil when none exists (fresh
	// directory or all generations corrupt — CorruptSnaps tells which).
	State *ShardState
	// Records are ALL readable WAL records, previous generation first,
	// unfiltered; the caller filters event records against State.LastSeq.
	Records []Record
	// UsedPrev reports that the current snapshot was missing or corrupt
	// and the previous generation was restored instead.
	UsedPrev bool
	// CorruptSnaps counts snapshot generations that existed but failed to
	// decode; >0 with State==nil means data existed and was lost.
	CorruptSnaps int
	// Torn reports a truncated/corrupt WAL tail (expected after a crash).
	Torn bool
	// SnapBytes/SnapTakenNs describe the restored snapshot file.
	SnapBytes   int64
	SnapTakenNs int64
}

// ShardStore is one shard's durable state: a two-generation snapshot
// pair plus the write-ahead log since the newest snapshot. All methods
// are called from the owning shard's goroutine only.
type ShardStore struct {
	cfg   Config
	shard int
	fp    uint64

	wal *walWriter
	enc Encoder // payload scratch
}

func (s *ShardStore) path(suffix string) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("shard-%03d%s", s.shard, suffix))
}

// NewShardStore opens (creating as needed) the store for one shard. The
// WAL is opened for append immediately so records written before the
// first snapshot are replayable too. A ceded tombstone (written when
// the shard's state was handed to another node) sweeps the old files
// first: the new owner already snapshotted that state, so replaying it
// here would re-emit every match the new owner delivered.
func NewShardStore(cfg Config, shard int, fp uint64) (*ShardStore, error) {
	cfg = cfg.WithDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &ShardStore{cfg: cfg, shard: shard, fp: fp}
	if _, err := os.Stat(s.path(cededSuffix)); err == nil {
		if err := s.sweepCeded(); err != nil {
			return nil, err
		}
	}
	w, err := openWAL(s.path(".wal"), fp, cfg.Fsync)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// cededSuffix marks a shard whose state migrated to another node. The
// marker is written AFTER the importing node has durably snapshotted
// the state, so the files it shadows are redundant, never the only
// copy.
const cededSuffix = ".ceded"

// CedeShard tombstones one shard's files in dir: a node that boots (or
// reopens) this store cold-starts the shard instead of replaying state
// that now lives elsewhere — replaying it would duplicate emissions.
// Used by the failover path, where the source process is dead and
// cannot retire its own store.
func CedeShard(dir string, shard int) error {
	return os.WriteFile(
		filepath.Join(dir, fmt.Sprintf("shard-%03d%s", shard, cededSuffix)),
		[]byte("ceded\n"), 0o644)
}

// sweepCeded removes the shard's snapshot/WAL generations plus the
// tombstone itself, leaving a cold directory for this shard.
func (s *ShardStore) sweepCeded() error {
	for _, suf := range []string{".snap", ".snap.prev", ".snap.tmp", ".wal", ".wal.prev", cededSuffix} {
		if err := os.Remove(s.path(suf)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	if s.cfg.Fsync {
		syncDir(s.cfg.Dir)
	}
	return nil
}

// Retire closes the store and tombstones its files — the planned-
// handoff source's last act after the target acknowledged a durable
// import. The shard's state now lives on the target; keeping readable
// snapshot/WAL generations here would make a restart of this node
// replay (and re-emit) history another node owns.
func (s *ShardStore) Retire() error {
	if err := s.wal.close(); err != nil {
		return err
	}
	return s.sweepCeded()
}

// Shard returns the shard index this store belongs to.
func (s *ShardStore) Shard() int { return s.shard }

// EveryEvents returns the effective snapshot interval.
func (s *ShardStore) EveryEvents() int { return s.cfg.EveryEvents }

func (s *ShardStore) stage(name string) {
	if s.cfg.OnStage != nil {
		s.cfg.OnStage(s.shard, name)
	}
}

// AppendEvent logs one input event before the engine processes it; the
// record joins the current flush group and the group-commit policy
// decides when the group reaches the OS.
func (s *ShardStore) AppendEvent(e *event.Event) error {
	if err := s.wal.append(RecEvent, encodeEventRecord(&s.enc, e)); err != nil {
		return err
	}
	return s.maybeFlush()
}

// AppendMatchKey logs a match key under the group-commit policy: the
// record joins the current flush group instead of forcing its own
// flush. The caller (the shard) must hold the match back until
// Unflushed reports zero — the record must be durable BEFORE the match
// is handed to OnMatch, so a crash after delivery can never re-emit it
// on replay.
func (s *ShardStore) AppendMatchKey(seq uint64, key string) error {
	if err := s.wal.append(RecMatch, encodeMatchRecord(&s.enc, seq, key)); err != nil {
		return err
	}
	return s.maybeFlush()
}

// AppendSkip logs a quarantined seq and flushes, so replay after the
// next crash skips the poison event instead of crash-looping on it.
func (s *ShardStore) AppendSkip(seq uint64) error {
	if err := s.wal.append(RecSkip, encodeSkipRecord(&s.enc, seq)); err != nil {
		return err
	}
	return s.wal.flush()
}

// Flush forces buffered WAL records to the OS (and the device when
// Fsync is on). A no-op with an empty buffer, so calling it on a timer
// or an idle batch boundary costs nothing.
func (s *ShardStore) Flush() error {
	if s.wal.pending == 0 {
		return nil
	}
	return s.wal.flush()
}

// Unflushed reports how many appended records are still buffered. Zero
// means every record appended so far is durable (to the OS; to the
// device with Fsync) — the shard's signal that held-back matches may be
// released.
func (s *ShardStore) Unflushed() int { return s.wal.pending }

// maybeFlush applies the group-commit policy on the append path: flush
// once the group reaches FlushEvery records, FlushBytes bytes, or
// FlushInterval age. The count/byte checks are branch-cheap and run on
// every append; the age check needs a clock read, so it is amortized to
// every 16th record — the worst case stretches the age bound by 15
// records' worth of appends, and FlushIfDue at the batch boundary
// checks the clock exactly.
func (s *ShardStore) maybeFlush() error {
	w := s.wal
	if w.pending >= s.cfg.FlushEvery || w.pendingBytes >= s.cfg.FlushBytes {
		return w.flush()
	}
	if w.pending&15 == 0 &&
		time.Now().UnixNano()-w.firstPendingNs >= int64(s.cfg.FlushInterval) {
		return w.flush()
	}
	return nil
}

// FlushIfDue applies the full policy — including an exact age check —
// outside an append; the shard calls it at batch boundaries so a
// trickle of records still flushes within FlushInterval even when no
// single append trips the policy.
func (s *ShardStore) FlushIfDue() error {
	w := s.wal
	if w.pending == 0 {
		return nil
	}
	if w.pending >= s.cfg.FlushEvery || w.pendingBytes >= s.cfg.FlushBytes ||
		time.Now().UnixNano()-w.firstPendingNs >= int64(s.cfg.FlushInterval) {
		return w.flush()
	}
	return nil
}

// Save writes a new snapshot atomically and rotates the WAL. Protocol
// (each boundary is a crash-safe point; see docs/DURABILITY.md):
//
//  1. encode + write to shard-NNN.snap.tmp, flush (and fsync when on)
//  2. rename snap -> snap.prev     (previous generation preserved)
//  3. rename snap.tmp -> snap      (atomic publish)
//  4. flush + close WAL, rename wal -> wal.prev, open fresh wal
//
// A crash before 3 leaves the old snap (or snap.prev) plus an intact
// WAL; a crash between 3 and 4 leaves the new snap plus a WAL whose
// pre-snapshot records Load filters out by seq. Returns the snapshot
// byte size.
//
// Save runs the whole protocol inline on the caller's goroutine; the
// async path splits it into WriteSnapshot (steps 1-3, safe off-thread)
// followed by RotateWAL (step 4, shard goroutine only).
func (s *ShardStore) Save(st *ShardState) (int, error) {
	n, err := s.WriteSnapshot(st)
	if err != nil {
		return 0, err
	}
	if err := s.RotateWAL(); err != nil {
		return 0, err
	}
	return n, nil
}

// WriteSnapshot encodes st and publishes it atomically (protocol steps
// 1-3: tmp write, generation rename, publish rename). Unlike every
// other ShardStore method, WriteSnapshot is safe to call from a
// background goroutine while the shard keeps appending to the WAL: it
// touches only the snapshot file family and allocates its own encoder.
// The caller must not overlap two WriteSnapshot calls and must call
// RotateWAL from the shard goroutine once the write has succeeded.
func (s *ShardStore) WriteSnapshot(st *ShardState) (int, error) {
	img := EncodeShardState(st, s.fp)
	s.stage("encoded")

	tmp := s.path(".snap.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return 0, err
	}
	if s.cfg.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return 0, err
		}
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	s.stage("tmp-written")

	cur := s.path(".snap")
	if err := os.Rename(cur, s.path(".snap.prev")); err != nil && !os.IsNotExist(err) {
		return 0, err
	}
	if err := os.Rename(tmp, cur); err != nil {
		return 0, err
	}
	s.stage("renamed")
	return len(img), nil
}

// RotateWAL retires the current WAL generation behind a just-published
// snapshot (protocol step 4): everything up to that snapshot is now
// redundant, but one previous generation is kept so a torn current
// snapshot can still recover from snap.prev + wal.prev + wal. Records
// appended between an async snapshot's capture point and this rotation
// land in wal.prev, above the snapshot's seq floor, so Load still
// replays them. Shard goroutine only.
func (s *ShardStore) RotateWAL() error {
	if err := s.wal.close(); err != nil {
		return err
	}
	if err := os.Rename(s.path(".wal"), s.path(".wal.prev")); err != nil && !os.IsNotExist(err) {
		return err
	}
	w, err := openWAL(s.path(".wal"), s.fp, s.cfg.Fsync)
	if err != nil {
		return err
	}
	s.wal = w
	if s.cfg.Fsync {
		syncDir(s.cfg.Dir)
	}
	s.stage("rotated")
	return nil
}

// SyncSaves reports whether this store requires the synchronous save
// protocol. OnStage fault injection deliberately does NOT force sync:
// chaos tests target the async protocol's background writer with it
// (a stage panic there must be contained, not crash a worker), and
// tests of the sync crash protocol set SyncSave explicitly.
func (s *ShardStore) SyncSaves() bool {
	return s.cfg.SyncSave
}

// Load reads the newest usable snapshot plus every readable WAL record
// (wal.prev then wal). The open WAL writer is flushed first so records
// appended this process lifetime are visible; the writer stays open for
// further appends.
func (s *ShardStore) Load() (*LoadResult, error) {
	if err := s.wal.flush(); err != nil {
		return nil, err
	}
	res := &LoadResult{}

	loadSnap := func(path string) *ShardState {
		data, err := os.ReadFile(path)
		if err != nil {
			if !os.IsNotExist(err) {
				res.CorruptSnaps++
			}
			return nil
		}
		st, err := DecodeShardState(data, s.fp)
		if err != nil {
			res.CorruptSnaps++
			return nil
		}
		res.SnapBytes = int64(len(data))
		res.SnapTakenNs = st.TakenNs
		return st
	}
	res.State = loadSnap(s.path(".snap"))
	if res.State == nil {
		if st := loadSnap(s.path(".snap.prev")); st != nil {
			res.State = st
			res.UsedPrev = true
		}
	}

	for _, p := range []string{s.path(".wal.prev"), s.path(".wal")} {
		recs, torn, err := readWALFile(p, s.fp)
		if err != nil {
			// Unreadable header: treat like a torn file — recover what the
			// snapshot covers and count the damage.
			res.Torn = true
			continue
		}
		res.Records = append(res.Records, recs...)
		res.Torn = res.Torn || torn
	}
	return res, nil
}

// Close flushes and closes the WAL (clean shutdown).
func (s *ShardStore) Close() error { return s.wal.close() }

// Abort closes the WAL without flushing, dropping buffered records —
// crash simulation for recovery tests.
func (s *ShardStore) Abort() { s.wal.abort() }

// syncDir best-effort fsyncs a directory so renames survive power loss.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// DeadLetterRecord mirrors runtime.DeadLetter without importing the
// runtime package (which imports this one).
type DeadLetterRecord struct {
	Shard   int
	Seq     uint64
	Type    string
	Reason  string
	Payload string
}

// DeadLetterState is the dead-letter queue checkpoint: the monotone
// total plus the retained ring, oldest first.
type DeadLetterState struct {
	Total   uint64
	Letters []DeadLetterRecord
}

const dlqFile = "deadletters.snap"

// encodeDeadLettersImage renders a complete dead-letter file image.
func encodeDeadLettersImage(st *DeadLetterState) []byte {
	var e Encoder
	e.Uvarint(st.Total)
	e.Uvarint(uint64(len(st.Letters)))
	for i := range st.Letters {
		l := &st.Letters[i]
		e.Varint(int64(l.Shard))
		e.Uvarint(l.Seq)
		e.Str(l.Type)
		e.Str(l.Reason)
		e.Str(l.Payload)
	}
	body := e.Bytes()
	img := putHeader(nil, dlqMagic, 0)
	img = binary.LittleEndian.AppendUint32(img, uint32(len(body)))
	img = binary.LittleEndian.AppendUint32(img, crc32.ChecksumIEEE(body))
	return append(img, body...)
}

// SaveDeadLetters atomically replaces the dead-letter checkpoint.
// Callers on different shard goroutines may race; each writes its own
// temp file and the last rename wins, which is fine for a bounded
// postmortem log.
func SaveDeadLetters(dir string, owner int, st *DeadLetterState, fsync bool) error {
	img := encodeDeadLettersImage(st)
	tmp := filepath.Join(dir, fmt.Sprintf("%s.tmp%d", dlqFile, owner))
	if err := os.WriteFile(tmp, img, 0o644); err != nil {
		return err
	}
	if fsync {
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
	}
	return os.Rename(tmp, filepath.Join(dir, dlqFile))
}

// LoadDeadLetters reads the dead-letter checkpoint; (nil, nil) when none
// exists, an error when it exists but cannot be decoded.
func LoadDeadLetters(dir string) (*DeadLetterState, error) {
	data, err := os.ReadFile(filepath.Join(dir, dlqFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return DecodeDeadLetters(data)
}

// DecodeDeadLetters parses a dead-letter checkpoint image.
func DecodeDeadLetters(data []byte) (*DeadLetterState, error) {
	rest, err := checkHeader(data, dlqMagic, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, fmt.Errorf("%w: short frame", ErrCorrupt)
	}
	bodyLen := binary.LittleEndian.Uint32(rest[:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	body := rest[8:]
	if uint64(bodyLen) > maxSnapshotBody || uint64(bodyLen) > uint64(len(body)) {
		return nil, fmt.Errorf("%w: body length past end", ErrCorrupt)
	}
	body = body[:bodyLen]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: dead-letter body CRC mismatch", ErrCorrupt)
	}
	d := NewDecoder(body)
	st := &DeadLetterState{Total: d.Uvarint()}
	n := d.Count(5)
	for i := 0; i < n && d.Err() == nil; i++ {
		st.Letters = append(st.Letters, DeadLetterRecord{
			Shard:   int(d.Varint()),
			Seq:     d.Uvarint(),
			Type:    d.Str(),
			Reason:  d.Str(),
			Payload: d.Str(),
		})
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return st, nil
}

// TakenNow is the wall-clock stamp recorded into snapshots.
func TakenNow() int64 { return time.Now().UnixNano() }
