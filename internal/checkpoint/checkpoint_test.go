package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// liveState runs a real engine over a generated stream and snapshots it,
// so round-trip tests cover a populated PM store, not an empty one.
func liveState(t *testing.T, n int) (*engine.Engine, *ShardState) {
	t.Helper()
	en := engine.New(nfa.MustCompile(query.Q1("2ms")), engine.DefaultCosts())
	s := gen.DS1(gen.DS1Config{Events: n, Seed: 3, InterArrival: 30 * event.Microsecond})
	var lastSeq uint64
	var lastTime int64
	for _, e := range s {
		en.Process(e)
		lastSeq, lastTime = e.Seq, int64(e.Time)
	}
	return en, &ShardState{
		Shard:    2,
		LastSeq:  lastSeq,
		HasSeq:   true,
		LastTime: lastTime,
		TakenNs:  123456789,
		Counters: Counters{
			EventsIn: uint64(n), Processed: uint64(n), Matched: 7,
			Restarts: 1, Quarantined: 2, BaseCreated: 11, BaseDropped: 5,
		},
		StrategyName: "Hybrid",
		Strategy:     []byte{1, 2, 3, 4},
		Engine:       en.Snapshot(),
	}
}

const testFP = 0xfeedbeefcafe

func TestShardStateRoundTrip(t *testing.T) {
	en, st := liveState(t, 400)
	if en.LiveCount() == 0 {
		t.Fatal("want live PMs in the fixture")
	}
	img := EncodeShardState(st, testFP)
	got, err := DecodeShardState(img, testFP)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Shard != st.Shard || got.LastSeq != st.LastSeq || got.HasSeq != st.HasSeq ||
		got.LastTime != st.LastTime ||
		got.TakenNs != st.TakenNs || got.Counters != st.Counters ||
		got.StrategyName != st.StrategyName || !bytes.Equal(got.Strategy, st.Strategy) {
		t.Fatalf("header fields diverged:\ngot  %+v\nwant %+v", got, st)
	}
	if got.Engine.Stats != st.Engine.Stats || got.Engine.NextID != st.Engine.NextID {
		t.Fatalf("engine stats diverged: got %+v want %+v", got.Engine.Stats, st.Engine.Stats)
	}
	if len(got.Engine.PMs) != len(st.Engine.PMs) || len(got.Engine.Events) != len(st.Engine.Events) {
		t.Fatalf("engine state sizes diverged: %d/%d PMs, %d/%d events",
			len(got.Engine.PMs), len(st.Engine.PMs), len(got.Engine.Events), len(st.Engine.Events))
	}
	// The decoded state must restore into a working engine.
	restored := engine.New(nfa.MustCompile(query.Q1("2ms")), engine.DefaultCosts())
	if err := restored.Restore(got.Engine); err != nil {
		t.Fatalf("Restore of decoded state: %v", err)
	}
	if restored.LiveCount() != en.LiveCount() {
		t.Fatalf("restored live %d, want %d", restored.LiveCount(), en.LiveCount())
	}
}

func TestDecodeRejections(t *testing.T) {
	_, st := liveState(t, 100)
	img := EncodeShardState(st, testFP)

	t.Run("wrong-fingerprint", func(t *testing.T) {
		if _, err := DecodeShardState(img, testFP+1); err == nil {
			t.Fatal("accepted wrong fingerprint")
		}
	})
	t.Run("wrong-magic", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[0] ^= 0xff
		if _, err := DecodeShardState(bad, testFP); err == nil {
			t.Fatal("accepted wrong magic")
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[8] ^= 0xff
		if _, err := DecodeShardState(bad, testFP); err == nil {
			t.Fatal("accepted wrong version")
		}
	})
	t.Run("body-bitflip", func(t *testing.T) {
		bad := append([]byte(nil), img...)
		bad[len(bad)-3] ^= 0x10
		if _, err := DecodeShardState(bad, testFP); err == nil {
			t.Fatal("accepted corrupt body (CRC should catch)")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(img); cut += 7 {
			if _, err := DecodeShardState(img[:cut], testFP); err == nil {
				t.Fatalf("accepted truncation at %d", cut)
			}
		}
	})
}

func walEvents(recs []Record) []*event.Event {
	var out []*event.Event
	for _, r := range recs {
		if r.Kind == RecEvent {
			out = append(out, r.Event)
		}
	}
	return out
}

func TestWALRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := NewShardStore(Config{Dir: dir, FlushEvery: 1}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	evs := gen.DS1(gen.DS1Config{Events: 50, Seed: 1, InterArrival: event.Millisecond})
	for _, e := range evs {
		if err := st.AppendEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendMatchKey(evs[9].Seq, "1,5,9"); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendSkip(evs[20].Seq); err != nil {
		t.Fatal(err)
	}
	res, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatal("clean WAL reported torn")
	}
	got := walEvents(res.Records)
	if len(got) != len(evs) {
		t.Fatalf("replayed %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].Seq != evs[i].Seq || got[i].Type != evs[i].Type || got[i].Time != evs[i].Time {
			t.Fatalf("event %d diverged: got %v want %v", i, got[i], evs[i])
		}
		for k, v := range evs[i].Attrs {
			if got[i].Attrs[k] != v {
				t.Fatalf("event %d attr %s diverged", i, k)
			}
		}
	}
	var matches, skips int
	for _, r := range res.Records {
		switch r.Kind {
		case RecMatch:
			matches++
			if r.Key != "1,5,9" || r.Seq != evs[9].Seq {
				t.Fatalf("match record %+v", r)
			}
		case RecSkip:
			skips++
			if r.Seq != evs[20].Seq {
				t.Fatalf("skip record %+v", r)
			}
		}
	}
	if matches != 1 || skips != 1 {
		t.Fatalf("matches=%d skips=%d, want 1/1", matches, skips)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Truncate the file at every byte boundary: each prefix must decode to
	// a (possibly torn) prefix of the records without error or panic.
	data, err := os.ReadFile(filepath.Join(dir, "shard-000.wal"))
	if err != nil {
		t.Fatal(err)
	}
	full, torn, err := DecodeWAL(data, testFP)
	if err != nil || torn {
		t.Fatalf("full decode: torn=%v err=%v", torn, err)
	}
	for cut := headerLen; cut < len(data); cut += 11 {
		recs, _, err := DecodeWAL(data[:cut], testFP)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) > len(full) {
			t.Fatalf("cut %d: more records than the full file", cut)
		}
		for i := range recs {
			if recs[i].Kind != full[i].Kind || recs[i].Seq != full[i].Seq {
				t.Fatalf("cut %d: record %d diverged", cut, i)
			}
		}
	}
	// A bit flip mid-record ends the scan at that record, keeping the
	// records before it.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	recs, torn, err := DecodeWAL(bad, testFP)
	if err != nil {
		t.Fatalf("bitflip decode: %v", err)
	}
	if !torn {
		t.Fatal("bitflip not reported as torn")
	}
	if len(recs) >= len(full) {
		t.Fatal("bitflip decode returned all records")
	}
}

// TestOpenWALTruncatesTornTail covers the reopen-after-crash path: a WAL
// with a partial last frame must be truncated to its last valid frame on
// open, so records appended by the recovered process land where the NEXT
// recovery can read them (the reader stops at the first bad frame —
// appending after a torn point would make every later record, including
// flushed match records, unreachable).
func TestOpenWALTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	store, err := NewShardStore(Config{Dir: dir, FlushEvery: 1}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	evs := gen.DS1(gen.DS1Config{Events: 20, Seed: 4, InterArrival: event.Millisecond})
	for _, e := range evs {
		if err := store.AppendEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.AppendMatchKey(evs[19].Seq, "m-old"); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop 3 bytes off the final frame (the m-old match).
	path := filepath.Join(dir, "shard-000.wal")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Reopen (repair runs inside), append more records, close cleanly.
	store2, err := NewShardStore(Config{Dir: dir, FlushEvery: 1}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	evs2 := gen.DS1(gen.DS1Config{Events: 10, Seed: 5, InterArrival: event.Millisecond})
	for _, e := range evs2 {
		e.Seq += 100 // distinct seq range for readability
		if err := store2.AppendEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := store2.AppendMatchKey(evs2[9].Seq, "m-new"); err != nil {
		t.Fatal(err)
	}
	res, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatal("repaired-then-appended WAL reported torn")
	}
	if got := len(walEvents(res.Records)); got != 30 {
		t.Fatalf("replayed %d events, want 30 (20 old + 10 new)", got)
	}
	var sawNew, sawOld bool
	for _, r := range res.Records {
		if r.Kind == RecMatch {
			switch r.Key {
			case "m-new":
				sawNew = true
			case "m-old":
				sawOld = true
			}
		}
	}
	if !sawNew {
		t.Fatal("match appended after repair is unreachable — tail was not truncated")
	}
	if sawOld {
		t.Fatal("torn match record survived repair")
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}

	// A WAL whose header belongs to another configuration rotates aside
	// instead of being appended to.
	store3, err := NewShardStore(Config{Dir: dir, FlushEvery: 1}, 0, testFP+1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := gen.DS1(gen.DS1Config{Events: 1, Seed: 6, InterArrival: event.Millisecond})
	if err := store3.AppendEvent(fresh[0]); err != nil {
		t.Fatal(err)
	}
	res3, err := store3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(walEvents(res3.Records)); got != 1 {
		t.Fatalf("fresh store replayed %d events, want 1", got)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("alien WAL not rotated aside: %v", err)
	}
	if err := store3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveRotatesAndLoadPrefersNewest(t *testing.T) {
	dir := t.TempDir()
	store, err := NewShardStore(Config{Dir: dir, FlushEvery: 1}, 1, testFP)
	if err != nil {
		t.Fatal(err)
	}
	_, st1 := liveState(t, 100)
	st1.LastSeq = 100
	if _, err := store.Save(st1); err != nil {
		t.Fatal(err)
	}
	evs := gen.DS1(gen.DS1Config{Events: 5, Seed: 9, InterArrival: event.Millisecond})
	for _, e := range evs {
		if err := store.AppendEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	_, st2 := liveState(t, 200)
	st2.LastSeq = 200
	if _, err := store.Save(st2); err != nil {
		t.Fatal(err)
	}
	res, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State == nil || res.State.LastSeq != 200 {
		t.Fatalf("loaded snapshot %+v, want LastSeq 200", res.State)
	}
	if res.UsedPrev {
		t.Fatal("UsedPrev set with an intact current snapshot")
	}
	// wal.prev (the 5 events) + fresh wal (empty) are both returned.
	if got := walEvents(res.Records); len(got) != len(evs) {
		t.Fatalf("records %d, want %d", len(got), len(evs))
	}
	store.Close()

	// Corrupt the current snapshot: Load falls back to the previous
	// generation and counts the corruption.
	snap := filepath.Join(dir, "shard-001.snap")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	store2, err := NewShardStore(Config{Dir: dir}, 1, testFP)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res2.State == nil || res2.State.LastSeq != 100 {
		t.Fatalf("fallback snapshot %+v, want LastSeq 100", res2.State)
	}
	if !res2.UsedPrev || res2.CorruptSnaps != 1 {
		t.Fatalf("UsedPrev=%v CorruptSnaps=%d, want true/1", res2.UsedPrev, res2.CorruptSnaps)
	}
	store2.Close()

	// Both generations corrupt: State nil, CorruptSnaps 2, no error — the
	// caller cold-starts.
	prev := filepath.Join(dir, "shard-001.snap.prev")
	if err := os.WriteFile(prev, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	store3, err := NewShardStore(Config{Dir: dir}, 1, testFP)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := store3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res3.State != nil || res3.CorruptSnaps != 2 {
		t.Fatalf("State=%v CorruptSnaps=%d, want nil/2", res3.State, res3.CorruptSnaps)
	}
	store3.Close()
}

// TestHalfWrittenTmpIgnored proves the atomic-publish property: a crash
// that leaves a garbage .snap.tmp does not affect what Load restores.
func TestHalfWrittenTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	store, err := NewShardStore(Config{Dir: dir}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	_, st := liveState(t, 100)
	st.LastSeq = 42
	if _, err := store.Save(st); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard-000.snap.tmp"), []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State == nil || res.State.LastSeq != 42 || res.CorruptSnaps != 0 {
		t.Fatalf("State=%+v CorruptSnaps=%d", res.State, res.CorruptSnaps)
	}
	store.Close()
}

func TestAbortDropsBufferedTail(t *testing.T) {
	dir := t.TempDir()
	// Every policy limit pinned huge: nothing reaches the OS until an
	// explicit flush.
	store, err := NewShardStore(Config{
		Dir: dir, FlushEvery: 1 << 20, FlushBytes: 1 << 30, FlushInterval: time.Hour,
	}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	evs := gen.DS1(gen.DS1Config{Events: 20, Seed: 2, InterArrival: event.Millisecond})
	for _, e := range evs[:10] {
		store.AppendEvent(e)
	}
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, e := range evs[10:] {
		store.AppendEvent(e)
	}
	store.Abort() // crash: buffered tail lost

	store2, err := NewShardStore(Config{Dir: dir}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := walEvents(res.Records); len(got) != 10 {
		t.Fatalf("recovered %d events, want the 10 flushed ones", len(got))
	}
	store2.Close()
}

func TestDeadLetterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if st, err := LoadDeadLetters(dir); err != nil || st != nil {
		t.Fatalf("empty dir: st=%v err=%v", st, err)
	}
	want := &DeadLetterState{
		Total: 9,
		Letters: []DeadLetterRecord{
			{Shard: 1, Seq: 44, Type: "A", Reason: "panic: boom", Payload: "A t=1"},
			{Shard: 0, Seq: 45, Type: "B", Reason: "panic: poison", Payload: "B t=2"},
		},
	}
	if err := SaveDeadLetters(dir, 1, want, false); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDeadLetters(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || len(got.Letters) != len(want.Letters) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want.Letters {
		if got.Letters[i] != want.Letters[i] {
			t.Fatalf("letter %d: got %+v, want %+v", i, got.Letters[i], want.Letters[i])
		}
	}
	// Corrupt file: error, not nil-and-ignore.
	path := filepath.Join(dir, "deadletters.snap")
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 1
	os.WriteFile(path, data, 0o644)
	if _, err := LoadDeadLetters(dir); err == nil {
		t.Fatal("accepted corrupt dead-letter file")
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a := Fingerprint("q1", "shards=4")
	b := Fingerprint("q1", "shards=8")
	c := Fingerprint("q1s", "hards=4") // boundary shift must not collide
	if a == b || a == c {
		t.Fatalf("fingerprint collisions: %x %x %x", a, b, c)
	}
	if a != Fingerprint("q1", "shards=4") {
		t.Fatal("fingerprint not deterministic")
	}
}

// TestFlushPolicyTriggers pins each group-commit limit in isolation:
// the record count, the byte bound, the age bound (both the amortized
// append-path check and the exact batch-boundary check), and the
// empty-buffer no-op.
func TestFlushPolicyTriggers(t *testing.T) {
	evs := gen.DS1(gen.DS1Config{Events: 64, Seed: 4, InterArrival: event.Millisecond})
	open := func(t *testing.T, cfg Config) *ShardStore {
		t.Helper()
		cfg.Dir = t.TempDir()
		store, err := NewShardStore(cfg, 0, testFP)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		return store
	}

	t.Run("count", func(t *testing.T) {
		store := open(t, Config{FlushEvery: 4, FlushBytes: 1 << 30, FlushInterval: time.Hour})
		for i, e := range evs[:3] {
			if err := store.AppendEvent(e); err != nil {
				t.Fatal(err)
			}
			if got := store.Unflushed(); got != i+1 {
				t.Fatalf("after %d appends Unflushed = %d", i+1, got)
			}
		}
		if err := store.AppendEvent(evs[3]); err != nil {
			t.Fatal(err)
		}
		if got := store.Unflushed(); got != 0 {
			t.Fatalf("4th append did not close the group: Unflushed = %d", got)
		}
	})

	t.Run("bytes", func(t *testing.T) {
		store := open(t, Config{FlushEvery: 1 << 20, FlushBytes: 1, FlushInterval: time.Hour})
		if err := store.AppendEvent(evs[0]); err != nil {
			t.Fatal(err)
		}
		if got := store.Unflushed(); got != 0 {
			t.Fatalf("byte bound did not flush: Unflushed = %d", got)
		}
	})

	t.Run("age-on-append", func(t *testing.T) {
		// The append path checks age only every 16th record; with the
		// interval at 1ns, records 1..15 stay buffered and the 16th
		// append flushes.
		store := open(t, Config{FlushEvery: 1 << 20, FlushBytes: 1 << 30, FlushInterval: time.Nanosecond})
		for _, e := range evs[:15] {
			if err := store.AppendEvent(e); err != nil {
				t.Fatal(err)
			}
		}
		if got := store.Unflushed(); got != 15 {
			t.Fatalf("age checked too eagerly: Unflushed = %d, want 15", got)
		}
		if err := store.AppendEvent(evs[15]); err != nil {
			t.Fatal(err)
		}
		if got := store.Unflushed(); got != 0 {
			t.Fatalf("16th append did not run the age check: Unflushed = %d", got)
		}
	})

	t.Run("age-at-boundary", func(t *testing.T) {
		// FlushIfDue (the batch-boundary check) is exact: one overdue
		// record flushes regardless of the amortization stride.
		store := open(t, Config{FlushEvery: 1 << 20, FlushBytes: 1 << 30, FlushInterval: time.Nanosecond})
		if err := store.AppendEvent(evs[0]); err != nil {
			t.Fatal(err)
		}
		if got := store.Unflushed(); got != 1 {
			t.Fatalf("Unflushed = %d, want 1", got)
		}
		time.Sleep(time.Microsecond)
		if err := store.FlushIfDue(); err != nil {
			t.Fatal(err)
		}
		if got := store.Unflushed(); got != 0 {
			t.Fatalf("FlushIfDue left Unflushed = %d", got)
		}
	})

	t.Run("empty-noop", func(t *testing.T) {
		// The boundary check firing with nothing buffered (an idle shard
		// whose batch produced no records) must be a no-op, not an error
		// or a spurious sync.
		store := open(t, Config{FlushEvery: 4, FlushBytes: 1 << 30, FlushInterval: time.Nanosecond})
		for i := 0; i < 3; i++ {
			if err := store.FlushIfDue(); err != nil {
				t.Fatal(err)
			}
		}
		if got := store.Unflushed(); got != 0 {
			t.Fatalf("Unflushed = %d after no appends", got)
		}
	})
}

// TestFlushGroupSpansSnapshotRotation: a flush group open at snapshot
// time must not lose records. Save closes the group into the outgoing
// WAL generation before rotating, so every pre-Save record survives a
// crash right after the snapshot, while post-Save appends start a fresh
// group in the new WAL and die with an unflushed crash.
func TestFlushGroupSpansSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	store, err := NewShardStore(Config{
		Dir: dir, FlushEvery: 1 << 20, FlushBytes: 1 << 30, FlushInterval: time.Hour,
	}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	evs := gen.DS1(gen.DS1Config{Events: 20, Seed: 2, InterArrival: event.Millisecond})
	for _, e := range evs[:10] {
		if err := store.AppendEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.Unflushed(); got != 10 {
		t.Fatalf("Unflushed = %d, want 10 buffered", got)
	}
	_, st := liveState(t, 50)
	st.LastSeq = 9
	if _, err := store.Save(st); err != nil {
		t.Fatal(err)
	}
	if got := store.Unflushed(); got != 0 {
		t.Fatalf("Save left the flush group open: Unflushed = %d", got)
	}
	for _, e := range evs[10:] {
		if err := store.AppendEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	store.Abort() // crash with an open group in the fresh WAL

	store2, err := NewShardStore(Config{Dir: dir}, 0, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	res, err := store2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if res.State == nil || res.State.LastSeq != 9 {
		t.Fatalf("snapshot not restored: %+v", res.State)
	}
	if got := walEvents(res.Records); len(got) != 10 {
		t.Fatalf("recovered %d WAL events, want the 10 pre-Save ones", len(got))
	}
}
