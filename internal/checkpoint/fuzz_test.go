package checkpoint

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// fuzzFP is the fingerprint fuzz inputs are decoded under; seed images
// are encoded with it so mutations start from accepted files.
const fuzzFP = 0x1234abcd5678ef90

// FuzzCheckpointDecode is the satellite fuzz target: arbitrary bytes fed
// to every on-disk decoder — snapshot, WAL, dead-letter — and, when a
// snapshot decodes, to engine.Restore. The contract is a clean error (or
// torn flag) on bad input; any panic or unbounded allocation is a bug,
// because upstream these paths run inside shard recovery where a panic
// would defeat the cold-start fallback.
func FuzzCheckpointDecode(f *testing.F) {
	m := nfa.MustCompile(query.Q1("2ms"))

	// Seeds: valid images of all three file kinds plus structured damage.
	en := engine.New(m, engine.DefaultCosts())
	s := gen.DS1(gen.DS1Config{Events: 120, Seed: 5, InterArrival: 30 * event.Microsecond})
	for _, e := range s {
		en.Process(e)
	}
	snap := EncodeShardState(&ShardState{
		Shard: 0, LastSeq: 120, LastTime: int64(30 * event.Microsecond * 120),
		Counters:     Counters{EventsIn: 120, Processed: 120, Matched: 3},
		StrategyName: "Hybrid", Strategy: []byte{9, 9},
		Engine: en.Snapshot(),
	}, fuzzFP)
	f.Add(snap)
	f.Add(append([]byte(nil), snap[:len(snap)/2]...))
	flip := append([]byte(nil), snap...)
	flip[len(flip)/3] ^= 0x20
	f.Add(flip)

	var enc Encoder
	wal := putHeader(nil, walMagic, fuzzFP)
	wal = appendFrame(wal, RecEvent, encodeEventRecord(&enc, s[0]))
	wal = appendFrame(wal, RecMatch, encodeMatchRecord(&enc, 7, "0,3,7"))
	wal = appendFrame(wal, RecSkip, encodeSkipRecord(&enc, 9))
	f.Add(wal)
	f.Add(append([]byte(nil), wal[:len(wal)-5]...))

	f.Add(encodeDeadLettersImage(&DeadLetterState{
		Total:   2,
		Letters: []DeadLetterRecord{{Shard: 1, Seq: 3, Type: "A", Reason: "r", Payload: "p"}},
	}))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if st, err := DecodeShardState(data, fuzzFP); err == nil {
			fresh := engine.New(m, engine.DefaultCosts())
			// Restore may reject the decoded state; it must not panic, and
			// on rejection it must leave the engine cold-usable.
			if rerr := fresh.Restore(st.Engine); rerr != nil && fresh.LiveCount() != 0 {
				t.Fatalf("rejected Restore left %d live PMs", fresh.LiveCount())
			}
			fresh.Process(event.New("A", event.Millisecond, map[string]event.Value{
				"ID": event.Int(1), "V": event.Int(2),
			}))
		}
		if recs, torn, err := DecodeWAL(data, fuzzFP); err == nil && torn && recs == nil {
			_ = recs // torn with zero records is legal (header-only file)
		}
		if st, err := DecodeDeadLetters(data); err == nil && st == nil {
			t.Fatal("DecodeDeadLetters returned nil state without error")
		}
	})
}
