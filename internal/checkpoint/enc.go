// Package checkpoint implements the durability subsystem: per-shard
// snapshot files of engine + strategy state, a CRC-framed write-ahead
// event log between snapshots, and a dead-letter checkpoint — the state
// a crashed or restarted process recovers instead of cold-starting
// (docs/DURABILITY.md).
//
// Everything on disk is framed with explicit lengths and CRC32 checks
// and decoded through a bounds-checked reader: corrupt or truncated
// bytes yield an error (and a cold-start fallback upstream), never a
// panic or an unbounded allocation. FuzzCheckpointDecode enforces that.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoder builds a snapshot or record body. The zero value is ready to
// use; Reset reuses the buffer across encodes.
type Encoder struct {
	buf []byte
}

// Reset truncates the buffer, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded body; valid until the next Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded length.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zigzag-encoded signed varint.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// F64 appends a float64 as fixed 8 little-endian bytes of its IEEE bits.
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// ErrCorrupt is the sentinel wrapped by every decode failure.
var ErrCorrupt = errors.New("checkpoint: corrupt data")

// Decoder reads an encoded body. It is sticky: after the first error
// every further read returns zero values and Err() reports the failure.
// All length prefixes are capped by the remaining byte count, so
// adversarial input cannot force large allocations.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder wraps a body.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// F64 reads a fixed 8-byte float64.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("short float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < 1 {
		d.fail("short bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		d.fail("bad bool")
		return false
	}
	return v == 1
}

// Str reads a length-prefixed string. The length is validated against
// the remaining bytes before any allocation.
func (d *Decoder) Str() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("string length past end")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// Blob reads a length-prefixed byte slice (copy).
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("blob length past end")
		return nil
	}
	out := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return out
}

// Count reads an element count whose elements occupy at least minBytes
// each, rejecting counts that could not possibly fit in the remaining
// input — the guard that keeps make() calls bounded on fuzzed data.
func (d *Decoder) Count(minBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(d.b)/minBytes) {
		d.fail("count past end")
		return 0
	}
	return int(n)
}
