package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// TestRegenFuzzCorpus rewrites the checked-in seed corpus for
// FuzzCheckpointDecode when CEPSHED_REGEN_CORPUS=1. Run it after any
// format change (and bump FormatVersion) so the corpus stays aligned
// with the encoders:
//
//	CEPSHED_REGEN_CORPUS=1 go test ./internal/checkpoint -run RegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("CEPSHED_REGEN_CORPUS") != "1" {
		t.Skip("set CEPSHED_REGEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	en := engine.New(nfa.MustCompile(query.Q1("2ms")), engine.DefaultCosts())
	s := gen.DS1(gen.DS1Config{Events: 120, Seed: 5, InterArrival: 30 * event.Microsecond})
	for _, e := range s {
		en.Process(e)
	}
	snap := EncodeShardState(&ShardState{
		Shard: 0, LastSeq: 120, LastTime: int64(30 * event.Microsecond * 120),
		Counters:     Counters{EventsIn: 120, Processed: 120, Matched: 3},
		StrategyName: "Hybrid", Strategy: []byte{9, 9},
		Engine: en.Snapshot(),
	}, fuzzFP)

	var enc Encoder
	wal := putHeader(nil, walMagic, fuzzFP)
	wal = appendFrame(wal, RecEvent, encodeEventRecord(&enc, s[0]))
	wal = appendFrame(wal, RecMatch, encodeMatchRecord(&enc, 7, "0,3,7"))
	wal = appendFrame(wal, RecSkip, encodeSkipRecord(&enc, 9))

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/3] ^= 0x20
	tornWAL := append([]byte(nil), wal[:len(wal)-5]...)

	seeds := map[string][]byte{
		"snapshot-valid":    snap,
		"snapshot-trunc":    snap[:len(snap)/2],
		"snapshot-bitflip":  flipped,
		"wal-valid":         wal,
		"wal-torn":          tornWAL,
		"dlq-valid":         encodeDeadLettersImage(&DeadLetterState{Total: 2, Letters: []DeadLetterRecord{{Shard: 1, Seq: 3, Type: "A", Reason: "r", Payload: "p"}}}),
		"magic-only":        []byte(snapMagic),
		"wal-header-only":   putHeader(nil, walMagic, fuzzFP),
		"snap-header-only":  putHeader(nil, snapMagic, fuzzFP),
		"zero-length":       {},
		"wal-garbage-frame": appendFrame(putHeader(nil, walMagic, fuzzFP), 'Z', []byte("junk")),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
