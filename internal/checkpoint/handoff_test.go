package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gen"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

// handoffSeed builds one representative handoff frame: warm engine
// state plus a WAL tail with all three record kinds, as a failover
// would ship.
func handoffSeed() (*Handoff, []byte) {
	en := engine.New(nfa.MustCompile(query.Q1("2ms")), engine.DefaultCosts())
	s := gen.DS1(gen.DS1Config{Events: 120, Seed: 5, InterArrival: 30 * event.Microsecond})
	for _, e := range s {
		en.Process(e)
	}
	h := &Handoff{
		Tenant: "acme",
		Query:  "main",
		Shard:  2,
		State: &ShardState{
			Shard: 2, LastSeq: 120, LastTime: int64(30 * event.Microsecond * 120),
			Counters:     Counters{EventsIn: 120, Processed: 120, Matched: 3},
			StrategyName: "Hybrid", Strategy: []byte{9, 9},
			Engine: en.Snapshot(),
		},
		Tail: []Record{
			{Kind: RecEvent, Event: s[0]},
			{Kind: RecMatch, Seq: 7, Key: "0,3,7"},
			{Kind: RecSkip, Seq: 9},
		},
	}
	return h, EncodeHandoff(h, fuzzFP)
}

func TestHandoffRoundTrip(t *testing.T) {
	h, frame := handoffSeed()
	got, err := DecodeHandoff(frame, fuzzFP)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != h.Tenant || got.Query != h.Query || got.Shard != h.Shard {
		t.Errorf("identity = %s/%s shard %d, want %s/%s shard %d",
			got.Tenant, got.Query, got.Shard, h.Tenant, h.Query, h.Shard)
	}
	if got.State == nil || got.State.LastSeq != 120 || got.State.Counters.Matched != 3 {
		t.Errorf("state = %+v, want LastSeq 120, Matched 3", got.State)
	}
	if got.State.Engine == nil || len(got.State.Engine.PMs) != len(h.State.Engine.PMs) ||
		got.State.Engine.NextID != h.State.Engine.NextID {
		t.Errorf("engine state changed in flight: got %d PMs NextID %d, want %d PMs NextID %d",
			len(got.State.Engine.PMs), got.State.Engine.NextID,
			len(h.State.Engine.PMs), h.State.Engine.NextID)
	}
	if len(got.Tail) != 3 {
		t.Fatalf("tail = %d records, want 3", len(got.Tail))
	}
	if got.Tail[1].Kind != RecMatch || got.Tail[1].Seq != 7 || got.Tail[1].Key != "0,3,7" {
		t.Errorf("tail[1] = %+v, want the match record", got.Tail[1])
	}
	if got.Tail[2].Kind != RecSkip || got.Tail[2].Seq != 9 {
		t.Errorf("tail[2] = %+v, want the skip record", got.Tail[2])
	}

	// Wrong fingerprint: a frame from a different query must be refused.
	if _, err := DecodeHandoff(frame, fuzzFP+1); err == nil {
		t.Error("DecodeHandoff accepted a frame under the wrong fingerprint")
	}
	// One flipped body byte: CRC must catch it.
	flip := append([]byte(nil), frame...)
	flip[len(flip)-3] ^= 0x40
	if _, err := DecodeHandoff(flip, fuzzFP); err == nil {
		t.Error("DecodeHandoff accepted a frame with a flipped body byte")
	}
}

// FuzzHandoffDecode mirrors FuzzCheckpointDecode for the network-facing
// frame: arbitrary bytes from a peer (or an attacker on the cluster
// port) must produce a clean error, never a panic or an engine restored
// from garbage. Seed corpus lives in testdata/fuzz/FuzzHandoffDecode;
// regenerate with CEPSHED_REGEN_CORPUS=1 after format changes.
func FuzzHandoffDecode(f *testing.F) {
	m := nfa.MustCompile(query.Q1("2ms"))
	_, frame := handoffSeed()
	f.Add(frame)
	f.Add(append([]byte(nil), frame[:len(frame)/2]...))
	flip := append([]byte(nil), frame...)
	flip[len(flip)/3] ^= 0x20
	f.Add(flip)
	f.Add([]byte(handoffMagic))
	f.Add(putHeader(nil, handoffMagic, fuzzFP))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHandoff(data, fuzzFP)
		if err != nil {
			return
		}
		if h == nil || h.State == nil {
			t.Fatal("DecodeHandoff returned nil handoff/state without error")
		}
		// A decoded frame still faces engine.Restore on import; it must
		// reject structurally-bad state without panicking and leave the
		// engine cold-usable.
		fresh := engine.New(m, engine.DefaultCosts())
		if rerr := fresh.Restore(h.State.Engine); rerr != nil && fresh.LiveCount() != 0 {
			t.Fatalf("rejected Restore left %d live PMs", fresh.LiveCount())
		}
	})
}

// TestRegenHandoffFuzzCorpus rewrites the checked-in seed corpus for
// FuzzHandoffDecode when CEPSHED_REGEN_CORPUS=1, same contract as
// TestRegenFuzzCorpus.
func TestRegenHandoffFuzzCorpus(t *testing.T) {
	if os.Getenv("CEPSHED_REGEN_CORPUS") != "1" {
		t.Skip("set CEPSHED_REGEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzHandoffDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, frame := handoffSeed()
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)/3] ^= 0x20
	seeds := map[string][]byte{
		"handoff-valid":   frame,
		"handoff-trunc":   frame[:len(frame)/2],
		"handoff-bitflip": flipped,
		"magic-only":      []byte(handoffMagic),
		"header-only":     putHeader(nil, handoffMagic, fuzzFP),
		"zero-length":     {},
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
