package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// Manifest persistence: the query registry records which (tenant, query)
// pairs are registered — and under which per-query state directory their
// shard checkpoints live — in a small JSON manifest inside the state
// directory. Unlike snapshots and WALs this file is written on control
// operations (add/remove/pause), never on the event path, so a
// human-debuggable encoding beats a binary frame. The write is the same
// temp-write-rename protocol the snapshots use: a crash mid-save leaves
// the previous manifest intact, never a torn one.

// SaveManifest atomically replaces path with the JSON encoding of v.
func SaveManifest(path string, v any, fsync bool) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if fsync {
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if fsync {
		syncDir(filepath.Dir(path))
	}
	return nil
}

// LoadManifest reads a manifest into v. Returns (false, nil) when the
// file does not exist — a fresh state directory, not an error.
func LoadManifest(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, err
	}
	return true, nil
}
