package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Manifest persistence: the query registry records which (tenant, query)
// pairs are registered — and under which per-query state directory their
// shard checkpoints live — in a small JSON manifest inside the state
// directory. Unlike snapshots and WALs this file is written on control
// operations (add/remove/pause), never on the event path, so a
// human-debuggable encoding beats a binary frame. The write is the same
// temp-write-rename protocol the snapshots use, and like them it keeps
// one previous generation (.prev): a crash mid-save leaves the previous
// manifest intact, and a manifest corrupted by anything else (partial
// write on a dying disk, an editor mishap) falls back to the previous
// generation instead of silently dropping every registered query.

// SaveManifest atomically replaces path with the JSON encoding of v,
// rotating the old manifest to path+".prev" first.
func SaveManifest(path string, v any, fsync bool) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if fsync {
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
	}
	// Rotate before publish: a crash between the two renames leaves
	// .prev plus .tmp, and LoadManifest falls back to .prev.
	if err := os.Rename(path, path+".prev"); err != nil && !os.IsNotExist(err) {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if fsync {
		syncDir(filepath.Dir(path))
	}
	return nil
}

// LoadManifest reads a manifest into v, falling back to the previous
// generation when the current one is missing or corrupt. Returns
// (false, nil) when neither generation exists — a fresh state
// directory, not an error — and an error only when a manifest exists
// but no generation is decodable (the caller decides whether that is
// fatal).
func LoadManifest(path string, v any) (bool, error) {
	var firstErr error
	for _, p := range []string{path, path + ".prev"} {
		data, err := os.ReadFile(p)
		if err != nil {
			if !os.IsNotExist(err) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := json.Unmarshal(data, v); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("manifest %s: %w", filepath.Base(p), err)
			}
			continue
		}
		return true, nil
	}
	return false, firstErr
}
