package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"

	"cepshed/internal/engine"
	"cepshed/internal/event"
)

// Snapshot file layout:
//
//	magic "CEPSNAP1" (8)  version u16 LE  fingerprint u64 LE
//	bodyLen u32 LE  bodyCRC u32 LE (CRC32-IEEE of the body)
//	body
//
// The fingerprint binds the file to one (query, shard count, negation
// mode) configuration: a snapshot taken under a different query or
// sharding must not be restored, because partial matches and WAL seqs
// would be meaningless. Any incompatible change to the body encoding
// bumps FormatVersion; decoders reject other versions, which upstream
// turns into a counted cold start (docs/DURABILITY.md).

const (
	snapMagic = "CEPSNAP1"
	walMagic  = "CEPWAL01"
	dlqMagic  = "CEPDLQ01"

	// FormatVersion is the on-disk format version shared by snapshot, WAL
	// and dead-letter files. Bump on any incompatible encoding change.
	// v2: ShardState gained HasSeq (LastSeq alone cannot express "no
	// events yet" — sequence numbers start at 0).
	FormatVersion = 2

	headerLen = 8 + 2 + 8         // magic + version + fingerprint
	frameLen  = headerLen + 4 + 4 // + bodyLen + bodyCRC

	// maxSnapshotBody bounds a snapshot body (and any WAL record): a
	// declared length beyond this is treated as corruption, not a reason
	// to allocate.
	maxSnapshotBody = 1 << 28
)

// Fingerprint hashes configuration strings into the file-header
// fingerprint (FNV-1a over the parts, NUL-separated).
func Fingerprint(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Counters are the shard's externally visible monotone counters frozen
// at snapshot time, restored on boot so /stats and /metrics stay
// monotone across a restart.
type Counters struct {
	EventsIn    uint64
	EventsShed  uint64
	Processed   uint64
	Overflow    uint64
	Matched     uint64
	Restarts    uint64
	Quarantined uint64
	// BaseCreated/BaseDropped are the worker-local offsets added to the
	// engine's CreatedPMs/DroppedPMs; the engine's own values live inside
	// Engine.Stats.
	BaseCreated uint64
	BaseDropped uint64
}

// ShardState is everything one shard persists per snapshot.
type ShardState struct {
	Shard   int
	LastSeq uint64 // seq of the last event reflected in Engine
	// HasSeq reports that LastSeq/LastTime are meaningful: at least one
	// event reached the shard before this snapshot. Seq numbering starts
	// at 0, so LastSeq == 0 alone is ambiguous between "first event" and
	// "no events"; replay must not treat an event-free snapshot as a
	// floor that filters seq 0.
	HasSeq   bool
	LastTime int64 // its virtual time
	TakenNs  int64  // wall clock (UnixNano) at snapshot time
	Counters Counters
	// StrategyName + Strategy carry the shedding strategy's opaque state
	// (shed.DurableStrategy); restored only when the running strategy has
	// the same name and accepts the blob.
	StrategyName string
	Strategy     []byte
	Engine       *engine.EngineState
}

func putHeader(buf []byte, magic string, fp uint64) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, FormatVersion)
	buf = binary.LittleEndian.AppendUint64(buf, fp)
	return buf
}

// checkHeader validates magic/version/fingerprint and returns the rest.
func checkHeader(data []byte, magic string, fp uint64) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, FormatVersion)
	}
	if got := binary.LittleEndian.Uint64(data[10:18]); got != fp {
		return nil, fmt.Errorf("%w: fingerprint mismatch (file %x, config %x)", ErrCorrupt, got, fp)
	}
	return data[headerLen:], nil
}

// EncodeShardState renders a complete snapshot file image.
func EncodeShardState(st *ShardState, fp uint64) []byte {
	var e Encoder
	encodeShardBody(&e, st)
	body := e.Bytes()
	out := make([]byte, 0, frameLen+len(body))
	out = putHeader(out, snapMagic, fp)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// DecodeShardState parses and validates a snapshot file image. The
// returned state still needs engine.Restore's structural validation.
func DecodeShardState(data []byte, fp uint64) (*ShardState, error) {
	rest, err := checkHeader(data, snapMagic, fp)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, fmt.Errorf("%w: short frame", ErrCorrupt)
	}
	bodyLen := binary.LittleEndian.Uint32(rest[:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	body := rest[8:]
	if uint64(bodyLen) > maxSnapshotBody || uint64(bodyLen) > uint64(len(body)) {
		return nil, fmt.Errorf("%w: body length %d past end", ErrCorrupt, bodyLen)
	}
	body = body[:bodyLen]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: snapshot body CRC mismatch", ErrCorrupt)
	}
	d := NewDecoder(body)
	st := decodeShardBody(d)
	if d.Err() != nil {
		return nil, d.Err()
	}
	return st, nil
}

func encodeShardBody(e *Encoder, st *ShardState) {
	e.Varint(int64(st.Shard))
	e.Uvarint(st.LastSeq)
	e.Bool(st.HasSeq)
	e.Varint(st.LastTime)
	e.Varint(st.TakenNs)
	c := &st.Counters
	e.Uvarint(c.EventsIn)
	e.Uvarint(c.EventsShed)
	e.Uvarint(c.Processed)
	e.Uvarint(c.Overflow)
	e.Uvarint(c.Matched)
	e.Uvarint(c.Restarts)
	e.Uvarint(c.Quarantined)
	e.Uvarint(c.BaseCreated)
	e.Uvarint(c.BaseDropped)
	e.Str(st.StrategyName)
	e.Blob(st.Strategy)
	encodeEngineState(e, st.Engine)
}

func decodeShardBody(d *Decoder) *ShardState {
	st := &ShardState{}
	st.Shard = int(d.Varint())
	st.LastSeq = d.Uvarint()
	st.HasSeq = d.Bool()
	st.LastTime = d.Varint()
	st.TakenNs = d.Varint()
	c := &st.Counters
	c.EventsIn = d.Uvarint()
	c.EventsShed = d.Uvarint()
	c.Processed = d.Uvarint()
	c.Overflow = d.Uvarint()
	c.Matched = d.Uvarint()
	c.Restarts = d.Uvarint()
	c.Quarantined = d.Uvarint()
	c.BaseCreated = d.Uvarint()
	c.BaseDropped = d.Uvarint()
	st.StrategyName = d.Str()
	st.Strategy = d.Blob()
	st.Engine = decodeEngineState(d)
	return st
}

func encodeEngineState(e *Encoder, st *engine.EngineState) {
	e.Bool(st.DeferredNegation)
	e.Uvarint(st.Stats.Events)
	e.Uvarint(st.Stats.CreatedPMs)
	e.Uvarint(st.Stats.ExpiredPMs)
	e.Uvarint(st.Stats.KilledByGuard)
	e.Uvarint(st.Stats.DroppedPMs)
	e.Uvarint(st.Stats.Matches)
	e.Uvarint(st.Stats.PredEvals)
	e.Uvarint(st.NextID)
	e.Uvarint(uint64(len(st.Events)))
	for _, ev := range st.Events {
		encodeEvent(e, ev)
	}
	e.Uvarint(uint64(len(st.PMs)))
	for i := range st.PMs {
		p := &st.PMs[i]
		e.Uvarint(p.ID)
		e.Uvarint(p.ParentID)
		e.Varint(int64(p.State))
		e.Varint(int64(p.StartTime))
		e.Uvarint(p.StartSeq)
		e.Varint(int64(p.Class))
		e.Varint(int64(p.Slice))
		e.Varint(int64(p.WitnessGuard))
		e.Uvarint(uint64(len(p.Singles)))
		for _, ei := range p.Singles {
			e.Varint(int64(ei))
		}
		e.Uvarint(uint64(len(p.Kleene)))
		for _, reps := range p.Kleene {
			e.Uvarint(uint64(len(reps)))
			for _, ei := range reps {
				e.Varint(int64(ei))
			}
		}
	}
}

func decodeEngineState(d *Decoder) *engine.EngineState {
	st := &engine.EngineState{}
	st.DeferredNegation = d.Bool()
	st.Stats.Events = d.Uvarint()
	st.Stats.CreatedPMs = d.Uvarint()
	st.Stats.ExpiredPMs = d.Uvarint()
	st.Stats.KilledByGuard = d.Uvarint()
	st.Stats.DroppedPMs = d.Uvarint()
	st.Stats.Matches = d.Uvarint()
	st.Stats.PredEvals = d.Uvarint()
	st.NextID = d.Uvarint()
	nev := d.Count(2) // an event encodes to >= 2 bytes
	for i := 0; i < nev && d.Err() == nil; i++ {
		st.Events = append(st.Events, decodeEvent(d))
	}
	npm := d.Count(8)
	for i := 0; i < npm && d.Err() == nil; i++ {
		var p engine.PMState
		p.ID = d.Uvarint()
		p.ParentID = d.Uvarint()
		p.State = int(d.Varint())
		p.StartTime = event.Time(d.Varint())
		p.StartSeq = d.Uvarint()
		p.Class = int(d.Varint())
		p.Slice = int(d.Varint())
		p.WitnessGuard = int(d.Varint())
		ns := d.Count(1)
		p.Singles = make([]int32, 0, ns)
		for j := 0; j < ns && d.Err() == nil; j++ {
			p.Singles = append(p.Singles, int32(d.Varint()))
		}
		nk := d.Count(1)
		p.Kleene = make([][]int32, 0, nk)
		for j := 0; j < nk && d.Err() == nil; j++ {
			nr := d.Count(1)
			var reps []int32
			for r := 0; r < nr && d.Err() == nil; r++ {
				reps = append(reps, int32(d.Varint()))
			}
			p.Kleene = append(p.Kleene, reps)
		}
		st.PMs = append(st.PMs, p)
	}
	return st
}

// encodeEvent writes one event: type, zigzag time, seq, attrs. Attribute
// iteration order is map order — nondeterministic but irrelevant, since
// checksums are computed over the final bytes.
func encodeEvent(e *Encoder, ev *event.Event) {
	e.Str(ev.Type)
	e.Varint(int64(ev.Time))
	e.Uvarint(ev.Seq)
	e.Uvarint(uint64(len(ev.Attrs)))
	for name, v := range ev.Attrs {
		e.Str(name)
		e.buf = append(e.buf, byte(v.Kind))
		switch v.Kind {
		case event.KindInt:
			e.Varint(v.I)
		case event.KindFloat:
			e.F64(v.F)
		case event.KindString:
			e.Str(v.S)
		}
	}
}

func decodeEvent(d *Decoder) *event.Event {
	typ := d.Str()
	t := event.Time(d.Varint())
	seq := d.Uvarint()
	na := d.Count(2) // name prefix + kind byte minimum
	attrs := make(map[string]event.Value, na)
	for i := 0; i < na && d.Err() == nil; i++ {
		name := d.Str()
		if d.Remaining() < 1 {
			d.fail("short attr kind")
			break
		}
		kind := event.Kind(d.b[0])
		d.b = d.b[1:]
		var v event.Value
		switch kind {
		case event.KindNone:
		case event.KindInt:
			v = event.Int(d.Varint())
		case event.KindFloat:
			v = event.Float(d.F64())
		case event.KindString:
			v = event.Str(d.Str())
		default:
			d.fail("bad attr kind")
		}
		attrs[name] = v
	}
	ev := event.New(typ, t, attrs)
	ev.Seq = seq
	return ev
}
