package checkpoint

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"os"
	"time"

	"cepshed/internal/event"
)

// WAL file layout: the same magic/version/fingerprint header as
// snapshots (magic "CEPWAL01"), then a sequence of records:
//
//	kind u8  payloadLen u32 LE  crc u32 LE  payload
//
// where crc is CRC32-IEEE over the kind byte followed by the payload.
// The reader tolerates a truncated or corrupt tail — it returns every
// record up to the first anomaly and flags the file as torn — because a
// crash mid-append is the WAL's normal ending, not an error.

// WAL record kinds.
const (
	// RecEvent is one processed input event, appended BEFORE the engine
	// sees it so replay covers events whose processing crashed.
	RecEvent byte = 'E'
	// RecMatch is the key of a delivered match plus the seq of the event
	// that completed it. Logged-and-flushed before delivery; on replay the
	// key suppresses re-emission (exactly-once per process crash).
	RecMatch byte = 'M'
	// RecSkip marks a quarantined (poison) seq: replay must skip it or the
	// poison event would re-crash the shard on every recovery.
	RecSkip byte = 'Q'
)

// maxWALRecord bounds one record payload.
const maxWALRecord = 1 << 24

// Record is one decoded WAL record.
type Record struct {
	Kind  byte
	Seq   uint64       // event seq (RecEvent, RecSkip) or completing seq (RecMatch)
	Event *event.Event // RecEvent only
	Key   string       // RecMatch only
}

// walWriter appends records to an open WAL file through a buffer.
type walWriter struct {
	f   *os.File
	bw  *bufio.Writer
	enc Encoder

	fsync bool
	// pending / pendingBytes / firstPendingNs describe the current flush
	// group: records buffered since the last flush, their framed size,
	// and when the first of them was appended. They feed the group-commit
	// policy in ShardStore.maybeFlush.
	pending        int
	pendingBytes   int
	firstPendingNs int64
}

// openWAL opens (creating and writing the header if empty) path for
// append. An existing file is repaired first: everything past the last
// valid frame — the torn remnant of a crash mid-write — is truncated,
// because the reader stops at the first bad frame, so records appended
// after a torn point would be unreachable on the next recovery (a
// second crash would then lose post-boot events and re-deliver matches
// whose M records sit beyond the tear). A file whose header does not
// match this process (foreign magic, version, or fingerprint) is
// rotated aside to .corrupt rather than appended to, for the same
// reason.
func openWAL(path string, fp uint64, fsync bool) (*walWriter, error) {
	if err := repairWAL(path, fp); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &walWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), fsync: fsync}
	if info.Size() == 0 {
		if _, err := w.bw.Write(putHeader(nil, walMagic, fp)); err != nil {
			f.Close()
			return nil, err
		}
		// The header reaches the OS now but is deliberately NOT fsynced:
		// no record is durable before its own flush's fsync, and that
		// fsync covers the whole file, header included. A crash before
		// the first record flush leaves an empty or torn header that
		// repairWAL handles like any other torn tail.
		if err := w.bw.Flush(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

// repairWAL makes an existing WAL file safe to append to: torn tails
// truncate to the last valid frame (losing only bytes no reader could
// use), alien headers rotate the whole file aside. Missing or empty
// files need no repair.
func repairWAL(path string, fp uint64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if len(data) == 0 {
		return nil
	}
	valid, headerOK := validWALPrefix(data, fp)
	if !headerOK {
		return os.Rename(path, path+".corrupt")
	}
	if valid < int64(len(data)) {
		return os.Truncate(path, valid)
	}
	return nil
}

// validWALPrefix returns the byte length of the header plus every valid
// frame (the prefix DecodeWAL would read), and whether the header
// itself was acceptable.
func validWALPrefix(data []byte, fp uint64) (int64, bool) {
	rest, err := checkHeader(data, walMagic, fp)
	if err != nil {
		return 0, false
	}
	n := int64(headerLen)
	for len(rest) >= 9 {
		plen := binary.LittleEndian.Uint32(rest[1:5])
		crc := binary.LittleEndian.Uint32(rest[5:9])
		if plen > maxWALRecord || uint64(plen) > uint64(len(rest)-9) {
			break
		}
		payload := rest[9 : 9+plen]
		h := crc32.NewIEEE()
		h.Write(rest[:1])
		h.Write(payload)
		if h.Sum32() != crc {
			break
		}
		if _, ok := decodeRecord(rest[0], payload); !ok {
			break
		}
		n += int64(9 + plen)
		rest = rest[9+plen:]
	}
	return n, true
}

// frameHeader renders the 9-byte record header for kind+payload.
func frameHeader(kind byte, payload []byte) [9]byte {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:1])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[5:9], crc.Sum32())
	return hdr
}

// appendFrame appends one framed record to an in-memory WAL image
// (fuzz-seed assembly).
func appendFrame(buf []byte, kind byte, payload []byte) []byte {
	hdr := frameHeader(kind, payload)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// append frames one record into the buffer. Data reaches the OS only at
// flush; a crash loses at most the buffered tail (the bounded-loss
// window documented in docs/DURABILITY.md).
func (w *walWriter) append(kind byte, payload []byte) error {
	hdr := frameHeader(kind, payload)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	if w.pending == 0 {
		w.firstPendingNs = time.Now().UnixNano()
	}
	w.pending++
	w.pendingBytes += len(hdr) + len(payload)
	return nil
}

func (w *walWriter) flush() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.pending = 0
	w.pendingBytes = 0
	if w.fsync {
		return w.f.Sync()
	}
	return nil
}

// close flushes and closes the file.
func (w *walWriter) close() error {
	ferr := w.flush()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// abort closes WITHOUT flushing, discarding the buffered tail — the
// in-process equivalent of SIGKILL, used by Runtime.Kill for recovery
// tests.
func (w *walWriter) abort() {
	w.f.Close()
}

// readWALFile loads a WAL file. A missing file yields (nil, false, nil);
// a bad header yields an error; a truncated or corrupt record tail stops
// the scan cleanly with torn=true.
func readWALFile(path string, fp uint64) (recs []Record, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return DecodeWAL(data, fp)
}

// DecodeWAL parses a WAL image. Exposed for the fuzz target.
func DecodeWAL(data []byte, fp uint64) (recs []Record, torn bool, err error) {
	rest, err := checkHeader(data, walMagic, fp)
	if err != nil {
		return nil, false, err
	}
	for len(rest) > 0 {
		if len(rest) < 9 {
			return recs, true, nil
		}
		kind := rest[0]
		plen := binary.LittleEndian.Uint32(rest[1:5])
		crc := binary.LittleEndian.Uint32(rest[5:9])
		if plen > maxWALRecord || uint64(plen) > uint64(len(rest)-9) {
			return recs, true, nil
		}
		payload := rest[9 : 9+plen]
		h := crc32.NewIEEE()
		h.Write(rest[:1])
		h.Write(payload)
		if h.Sum32() != crc {
			return recs, true, nil
		}
		rec, ok := decodeRecord(kind, payload)
		if !ok {
			return recs, true, nil
		}
		recs = append(recs, rec)
		rest = rest[9+plen:]
	}
	return recs, false, nil
}

func decodeRecord(kind byte, payload []byte) (Record, bool) {
	d := NewDecoder(payload)
	rec := Record{Kind: kind}
	switch kind {
	case RecEvent:
		rec.Event = decodeEvent(d)
		if d.Err() != nil {
			return rec, false
		}
		rec.Seq = rec.Event.Seq
	case RecMatch:
		rec.Seq = d.Uvarint()
		rec.Key = d.Str()
		if d.Err() != nil {
			return rec, false
		}
	case RecSkip:
		rec.Seq = d.Uvarint()
		if d.Err() != nil {
			return rec, false
		}
	default:
		return rec, false
	}
	return rec, true
}

// encodeEventRecord renders a RecEvent payload into enc (reset first).
func encodeEventRecord(enc *Encoder, e *event.Event) []byte {
	enc.Reset()
	encodeEvent(enc, e)
	return enc.Bytes()
}

func encodeMatchRecord(enc *Encoder, seq uint64, key string) []byte {
	enc.Reset()
	enc.Uvarint(seq)
	enc.Str(key)
	return enc.Bytes()
}

func encodeSkipRecord(enc *Encoder, seq uint64) []byte {
	enc.Reset()
	enc.Uvarint(seq)
	return enc.Bytes()
}
