package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Handoff frame: the unit shipped between nodes when a shard migrates
// (planned handoff) or fails over. Layout mirrors the snapshot file —
//
//	magic "CEPHOF01" (8)  version u16 LE  fingerprint u64 LE
//	bodyLen u32 LE  bodyCRC u32 LE (CRC32-IEEE of the body)
//	body
//
// — so the importing node gets the same corruption guarantees over the
// network that recovery gets from disk: a flipped byte is a rejected
// frame, never a panic or a silently wrong engine state. The
// fingerprint is the runtime fingerprint (query string + shard count +
// negation mode), which both nodes derive independently from the same
// registered query; a frame from a different query or sharding cannot
// be imported. The body carries the routing identity (tenant/query and
// shard slot), the full serialized shard state, and the WAL tail
// records not yet reflected in that state — present on the failover
// path, empty on a planned handoff where the source drained first.

const handoffMagic = "CEPHOF01"

// Handoff is one shard's migration payload.
type Handoff struct {
	Tenant string
	Query  string // query name within the tenant
	Shard  int    // shard slot index
	State  *ShardState
	// Tail is the WAL records past the snapshot (failover only): events
	// to replay, match keys to suppress, poison seqs to skip.
	Tail []Record
}

// EncodeHandoff renders a complete handoff frame. fp is the runtime
// fingerprint shared by exporter and importer.
func EncodeHandoff(h *Handoff, fp uint64) []byte {
	var e Encoder
	e.Str(h.Tenant)
	e.Str(h.Query)
	e.Varint(int64(h.Shard))
	encodeShardBody(&e, h.State)
	e.Uvarint(uint64(len(h.Tail)))
	var rec Encoder
	for i := range h.Tail {
		r := &h.Tail[i]
		e.buf = append(e.buf, r.Kind)
		switch r.Kind {
		case RecEvent:
			e.Blob(encodeEventRecord(&rec, r.Event))
		case RecMatch:
			e.Blob(encodeMatchRecord(&rec, r.Seq, r.Key))
		case RecSkip:
			e.Blob(encodeSkipRecord(&rec, r.Seq))
		}
	}
	body := e.Bytes()
	out := make([]byte, 0, frameLen+len(body))
	out = putHeader(out, handoffMagic, fp)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...)
}

// DecodeHandoff parses and validates a handoff frame. Like
// DecodeShardState, the returned engine state still needs
// engine.Restore's structural validation on import.
func DecodeHandoff(data []byte, fp uint64) (*Handoff, error) {
	rest, err := checkHeader(data, handoffMagic, fp)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, fmt.Errorf("%w: short frame", ErrCorrupt)
	}
	bodyLen := binary.LittleEndian.Uint32(rest[:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	body := rest[8:]
	if uint64(bodyLen) > maxSnapshotBody || uint64(bodyLen) > uint64(len(body)) {
		return nil, fmt.Errorf("%w: body length %d past end", ErrCorrupt, bodyLen)
	}
	body = body[:bodyLen]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: handoff body CRC mismatch", ErrCorrupt)
	}
	d := NewDecoder(body)
	h := &Handoff{}
	h.Tenant = d.Str()
	h.Query = d.Str()
	h.Shard = int(d.Varint())
	h.State = decodeShardBody(d)
	ntail := d.Count(2) // kind byte + length prefix minimum
	for i := 0; i < ntail && d.Err() == nil; i++ {
		if d.Remaining() < 1 {
			d.fail("short tail record kind")
			break
		}
		kind := d.b[0]
		d.b = d.b[1:]
		payload := d.Blob()
		if d.Err() != nil {
			break
		}
		rec, ok := decodeRecord(kind, payload)
		if !ok {
			d.fail("bad tail record")
			break
		}
		h.Tail = append(h.Tail, rec)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return h, nil
}
