// Package citibike simulates a bike-sharing trip stream with the
// structural properties the paper's case study depends on (§II-A
// Example 1, §VI-I): trips of the same bike chain end-to-start because
// bikes physically move between stations, chains toward a small set of
// "hot" destination stations appear in bursts, and burst periods multiply
// the trip rate — producing the drastic partial-match spikes of Fig 1.
//
// The real citibike dataset (October 2018) is not redistributable and the
// environment is offline; DESIGN.md §4 documents why this synthetic
// equivalent preserves the evaluated behaviour.
package citibike

import (
	"math/rand"

	"cepshed/internal/event"
)

// Spike is one burst period within the stream.
type Spike struct {
	// StartFrac/EndFrac delimit the burst as fractions of the trip count.
	StartFrac, EndFrac float64
	// RateMul multiplies the trip rate during the burst (gaps shrink).
	RateMul float64
	// HotBias is the probability that a burst trip ends at a hot station.
	HotBias float64
}

// Config parameterizes the simulator.
type Config struct {
	// Trips is the number of trip events.
	Trips int
	// Stations is the number of stations; stations 7-9 are the "hot"
	// destinations of Listing 1. Default 20 (minimum 10).
	Stations int
	// Bikes is the fleet size. Default 150.
	Bikes int
	// MeanGap is the mean inter-trip gap outside bursts. Default 2s.
	MeanGap event.Time
	// ChainBias is the probability that the next trip reuses a recently
	// moved bike, which lengthens same-bike chains. Default 0.5.
	ChainBias float64
	// Spikes are the burst periods. Default: one burst over the middle
	// fifth of the stream, 6x rate, 0.7 hot bias.
	Spikes []Spike
	// MemberFrac is the fraction of trips by members (attribute "user").
	// Default 0.8.
	MemberFrac float64
	// Seed drives the generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Trips <= 0 {
		c.Trips = 20000
	}
	if c.Stations < 10 {
		c.Stations = 20
	}
	if c.Bikes <= 0 {
		c.Bikes = 150
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 2 * event.Second
	}
	if c.ChainBias <= 0 {
		c.ChainBias = 0.5
	}
	if c.Spikes == nil {
		c.Spikes = []Spike{{StartFrac: 0.4, EndFrac: 0.6, RateMul: 6, HotBias: 0.7}}
	}
	if c.MemberFrac <= 0 {
		c.MemberFrac = 0.8
	}
	return c
}

// hot stations per Listing 1 (b.end IN (7,8,9)).
var hotStations = []int64{7, 8, 9}

// Generate produces the trip stream. Every event has type "BikeTrip" with
// attributes bike, start, end (ints) and user (string: member/casual).
func Generate(cfg Config) event.Stream {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Bike positions; recently moved bikes are chain candidates.
	pos := make([]int64, cfg.Bikes)
	for i := range pos {
		pos[i] = int64(1 + rng.Intn(cfg.Stations))
	}
	recent := make([]int, 0, 64)

	var b event.Builder
	t := event.Time(0)
	for i := 0; i < cfg.Trips; i++ {
		frac := float64(i) / float64(cfg.Trips)
		gap := cfg.MeanGap
		hotBias := 0.15
		inSpike := false
		for _, sp := range cfg.Spikes {
			if frac >= sp.StartFrac && frac < sp.EndFrac {
				gap = event.Time(float64(cfg.MeanGap) / sp.RateMul)
				hotBias = sp.HotBias
				inSpike = true
			}
		}
		t += event.Time(float64(gap) * (0.5 + rng.Float64()))

		// Pick a bike: bias toward recently moved ones (chains), more so
		// during bursts.
		var bike int
		chainP := cfg.ChainBias
		if inSpike {
			chainP = 0.8
		}
		if len(recent) > 0 && rng.Float64() < chainP {
			bike = recent[rng.Intn(len(recent))]
		} else {
			bike = rng.Intn(cfg.Bikes)
		}
		start := pos[bike]
		var end int64
		if rng.Float64() < hotBias {
			end = hotStations[rng.Intn(len(hotStations))]
		} else {
			end = int64(1 + rng.Intn(cfg.Stations))
		}
		if end == start {
			end = 1 + (start % int64(cfg.Stations))
		}
		pos[bike] = end
		if len(recent) >= 64 {
			recent = recent[1:]
		}
		recent = append(recent, bike)

		user := "casual"
		if rng.Float64() < cfg.MemberFrac {
			user = "member"
		}
		b.Append(event.New("BikeTrip", t, map[string]event.Value{
			"bike":  event.Int(int64(bike)),
			"start": event.Int(start),
			"end":   event.Int(end),
			"user":  event.Str(user),
		}))
	}
	return b.Finish()
}
