package citibike

import (
	"testing"

	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
)

func TestGenerateBasicShape(t *testing.T) {
	s := Generate(Config{Trips: 5000, Seed: 1})
	if len(s) != 5000 {
		t.Fatalf("trips = %d", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range s[:100] {
		if e.Type != "BikeTrip" {
			t.Fatalf("type = %s", e.Type)
		}
		if e.Int("start") == e.Int("end") {
			t.Fatal("trip with identical start and end")
		}
		if u := e.Str("user"); u != "member" && u != "casual" {
			t.Fatalf("user = %q", u)
		}
	}
}

func TestTripsChainPerBike(t *testing.T) {
	// Physical consistency: consecutive trips of the same bike must chain
	// end-to-start — the property HotPaths' incremental predicates need.
	s := Generate(Config{Trips: 3000, Seed: 2})
	lastEnd := map[int64]int64{}
	for _, e := range s {
		bike := e.Int("bike")
		if prev, ok := lastEnd[bike]; ok {
			if e.Int("start") != prev {
				t.Fatalf("bike %d starts at %d after ending at %d",
					bike, e.Int("start"), prev)
			}
		}
		lastEnd[bike] = e.Int("end")
	}
}

func TestSpikeRaisesRateAndPMs(t *testing.T) {
	s := Generate(Config{Trips: 3000, Seed: 3})
	// Gap inside the default burst (40-60%) must be much smaller.
	mid := s[int(0.45*float64(len(s))):int(0.55*float64(len(s)))]
	head := s[:len(s)/5]
	midGap := float64(mid[len(mid)-1].Time-mid[0].Time) / float64(len(mid))
	headGap := float64(head[len(head)-1].Time-head[0].Time) / float64(len(head))
	if midGap > headGap/3 {
		t.Errorf("burst gap %.0f not << base gap %.0f", midGap, headGap)
	}

	// Fig 1's shape: the live partial-match count spikes during the burst.
	m := nfa.MustCompile(query.HotPaths("2 min", 1, 4))
	en := engine.New(m, engine.DefaultCosts())
	maxBefore, maxDuring := 0, 0
	for i, e := range s {
		en.Process(e)
		frac := float64(i) / float64(len(s))
		if frac < 0.35 {
			if en.LiveCount() > maxBefore {
				maxBefore = en.LiveCount()
			}
		} else if frac >= 0.42 && frac < 0.6 {
			if en.LiveCount() > maxDuring {
				maxDuring = en.LiveCount()
			}
		}
	}
	if maxDuring < 3*maxBefore {
		t.Errorf("PM spike %d not >> pre-burst max %d", maxDuring, maxBefore)
	}
	t.Logf("PM peak before burst: %d, during: %d", maxBefore, maxDuring)
}

func TestHotPathsQueryFindsMatches(t *testing.T) {
	s := Generate(Config{Trips: 2500, Seed: 4})
	m := nfa.MustCompile(query.HotPaths("3 min", 2, 5))
	en := engine.New(m, engine.DefaultCosts())
	matches := 0
	for _, e := range s {
		matches += len(en.Process(e).Matches)
	}
	if matches == 0 {
		t.Fatal("hot-path query found no matches on the simulated data")
	}
	t.Logf("hot-path matches: %d", matches)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Trips: 500, Seed: 9})
	b := Generate(Config{Trips: 500, Seed: 9})
	for i := range a {
		if a[i].Int("bike") != b[i].Int("bike") || a[i].Time != b[i].Time {
			t.Fatal("streams diverge")
		}
	}
}

var _ = event.Second
