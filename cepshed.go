// Package cepshed is a complex event processing (CEP) engine with hybrid
// load shedding, implementing Zhao, Nguyen & Weidlich, "Load Shedding for
// Complex Event Processing: Input-based and State-based Techniques"
// (ICDE 2020).
//
// The package evaluates SASE-style pattern queries (sequences, Kleene
// closure, negation, correlation predicates, aggregates, time or count
// windows) over event streams under the exhaustive skip-till-any-match
// policy, and — when input rates exceed what a latency bound allows —
// sheds load with strategies ranging from random input dropping to the
// paper's hybrid approach, which combines input-based shedding (discard
// raw events, ρI) with state-based shedding (discard partial matches, ρS)
// driven by one learned cost model.
//
// Quick start:
//
//	q := cepshed.MustParseQuery(`
//	    PATTERN SEQ(A a, B b, C c)
//	    WHERE a.ID = b.ID AND a.ID = c.ID AND a.V + b.V = c.V
//	    WITHIN 8ms`)
//	sys := cepshed.MustCompile(q)
//	model := sys.MustTrain(trainingStream, cepshed.TrainConfig{})
//	strategy := sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound})
//	result := sys.Run(stream, cepshed.RunOptions{Strategy: strategy})
//
// Processing is deterministic: time is virtual (one Time unit is one
// virtual nanosecond) and latency comes from a single-server queueing
// model over the engine's per-event work. See DESIGN.md for the mapping
// between this repository and the paper.
package cepshed

import (
	"cepshed/internal/baseline"
	"cepshed/internal/citibike"
	"cepshed/internal/core"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/gcluster"
	"cepshed/internal/gen"
	"cepshed/internal/knapsack"
	"cepshed/internal/metrics"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
	"cepshed/internal/shed"
)

// Core re-exported types.
type (
	// Event is a single stream element.
	Event = event.Event
	// Value is a typed attribute value.
	Value = event.Value
	// Time is virtual time in virtual nanoseconds.
	Time = event.Time
	// Stream is an ordered event sequence.
	Stream = event.Stream
	// StreamBuilder accumulates events into a Stream.
	StreamBuilder = event.Builder
	// Query is a parsed CEP query.
	Query = query.Query
	// Match is a detected complete match.
	Match = engine.Match
	// PartialMatch is a live run of the automaton.
	PartialMatch = engine.PartialMatch
	// EngineStats are the engine's counters.
	EngineStats = engine.Stats
	// Strategy is a load-shedding policy.
	Strategy = shed.Strategy
	// RunResult aggregates the measurements of one processing run.
	RunResult = metrics.RunResult
	// MatchSet is a set of match identities.
	MatchSet = metrics.MatchSet
	// LatencySummary aggregates latencies over a run.
	LatencySummary = metrics.LatencySummary
	// CostModel is the trained partial-match cost model.
	CostModel = core.Model
	// TrainConfig configures offline cost-model estimation.
	TrainConfig = core.TrainConfig
	// Selectivity holds the offline statistics for SI/SS baselines.
	Selectivity = baseline.Selectivity
	// PositionUtility holds the per-type position histograms for the PI
	// baseline (eSPICE-style position-based input shedding).
	PositionUtility = baseline.PositionUtility
	// Runtime is the sharded wall-clock streaming runtime (see
	// docs/RUNTIME.md): events partition by correlation key across
	// concurrent engine shards fed through bounded backpressure queues.
	Runtime = runtime.Runtime
	// RuntimeConfig configures a Runtime.
	RuntimeConfig = runtime.Config
	// RuntimeSnapshot is a point-in-time view of a Runtime's counters.
	RuntimeSnapshot = runtime.Snapshot
	// ShardSnapshot is the per-shard portion of a RuntimeSnapshot.
	ShardSnapshot = runtime.ShardSnapshot
)

// Virtual time units.
const (
	Nanosecond  = event.Nanosecond
	Microsecond = event.Microsecond
	Millisecond = event.Millisecond
	Second      = event.Second
)

// Value constructors.
var (
	// Int builds an integer attribute value.
	Int = event.Int
	// Float builds a floating point attribute value.
	Float = event.Float
	// Str builds a string attribute value.
	Str = event.Str
	// NewEvent allocates an event.
	NewEvent = event.New
)

// Latency statistics a bound can apply to.
const (
	BoundMean = metrics.BoundMean
	BoundP95  = metrics.BoundP95
	BoundP99  = metrics.BoundP99
)

// BoundStat selects which latency statistic a bound applies to.
type BoundStat = metrics.BoundStat

// ParseQuery parses a SASE-style query text.
func ParseQuery(src string) (*Query, error) { return query.Parse(src) }

// MustParseQuery parses and panics on error.
func MustParseQuery(src string) *Query { return query.MustParse(src) }

// Recall returns the fraction of truth matches present in got.
func Recall(truth, got MatchSet) float64 { return metrics.Recall(truth, got) }

// Precision returns the fraction of got matches present in truth.
func Precision(truth, got MatchSet) float64 { return metrics.Precision(truth, got) }

// System is a compiled query ready to process streams.
type System struct {
	machine *nfa.Machine
}

// Compile compiles a query into a System.
func Compile(q *Query) (*System, error) {
	m, err := nfa.Compile(q)
	if err != nil {
		return nil, err
	}
	return &System{machine: m}, nil
}

// MustCompile compiles and panics on error.
func MustCompile(q *Query) *System {
	s, err := Compile(q)
	if err != nil {
		panic(err)
	}
	return s
}

// Query returns the compiled query.
func (s *System) Query() *Query { return s.machine.Query }

// RunOptions configures one processing run.
type RunOptions struct {
	// Strategy is the shedding strategy (nil: no shedding).
	Strategy Strategy
	// BoundStat selects the smoothed latency statistic driving the
	// strategy (default: sliding mean over SmoothWindow samples).
	BoundStat BoundStat
	// SmoothWindow is the smoothing window size (default 1000).
	SmoothWindow int
	// SamplePMsEvery samples the live partial-match count every that
	// many events when > 0.
	SamplePMsEvery int
	// DeferredNegation switches negation to witness semantics, under
	// which shedding can fabricate matches (see DESIGN.md).
	DeferredNegation bool
}

// Run processes a stream and returns the measured result.
func (s *System) Run(stream Stream, opts RunOptions) *RunResult {
	return metrics.Run(s.machine, stream, metrics.RunConfig{
		Strategy:         opts.Strategy,
		BoundStat:        opts.BoundStat,
		SmoothWindow:     opts.SmoothWindow,
		SamplePMsEvery:   opts.SamplePMsEvery,
		DeferredNegation: opts.DeferredNegation,
	})
}

// NewRuntime starts the sharded wall-clock runtime for the compiled
// query. The runtime is live immediately; feed it with Offer and stop it
// with Close. With Shards = 1 its match set is identical to Run's.
func (s *System) NewRuntime(cfg RuntimeConfig) *Runtime {
	return runtime.New(s.machine, cfg)
}

// InferPartitionKey returns the attribute the runtime would partition
// this query's events by ("" when no cross-variable equality exists).
func (s *System) InferPartitionKey() string {
	return runtime.InferPartitionKey(s.machine.Query)
}

// Train estimates the hybrid cost model from historic data (§V-B).
func (s *System) Train(training Stream, cfg TrainConfig) (*CostModel, error) {
	return core.Train(s.machine, training, cfg)
}

// MustTrain trains and panics on error.
func (s *System) MustTrain(training Stream, cfg TrainConfig) *CostModel {
	return core.MustTrain(s.machine, training, cfg)
}

// EstimateSelectivity derives the per-event and per-state selectivity
// statistics the SI and SS baselines use.
func (s *System) EstimateSelectivity(training Stream) *Selectivity {
	return baseline.EstimateSelectivity(s.machine, training)
}

// HybridConfig configures the hybrid strategy.
type HybridConfig struct {
	// Bound is the latency bound θ in virtual time.
	Bound Time
	// InputOnly/StateOnly restrict the strategy to one shedding function
	// (HyI / HyS). Both false: full hybrid.
	InputOnly bool
	StateOnly bool
	// DelayEvents is the minimum number of events between state-shedding
	// triggers (default 200).
	DelayEvents int
	// Greedy selects the approximate knapsack solver (§V-C) instead of
	// the exact dynamic program.
	Greedy bool
	// Adapt enables online adaptation of the cost model (default
	// recommended: true).
	Adapt bool
}

// NewHybrid builds the paper's hybrid shedding strategy over a trained
// cost model.
func (s *System) NewHybrid(model *CostModel, cfg HybridConfig) Strategy {
	mode := core.ModeHybrid
	if cfg.InputOnly {
		mode = core.ModeInputOnly
	} else if cfg.StateOnly {
		mode = core.ModeStateOnly
	}
	solver := knapsack.Exact
	if cfg.Greedy {
		solver = knapsack.Greedy
	}
	return core.NewHybrid(model, core.Config{
		Bound:       cfg.Bound,
		Mode:        mode,
		DelayEvents: cfg.DelayEvents,
		Solver:      solver,
		Adapt:       cfg.Adapt,
	})
}

// NewFixedRatioHybrid builds the fixed-shedding-ratio variant: input=true
// sheds the lowest-utility events (HyI), otherwise the lowest-utility
// partial matches (HyS), at the given ratio.
func (s *System) NewFixedRatioHybrid(model *CostModel, ratio float64, input bool, seed int64) Strategy {
	return core.NewFixedRatioHybrid(model, ratio, input, seed)
}

// Baseline strategies (latency-bound driven).
func NewRandomInput(bound Time, seed int64) Strategy { return baseline.NewRandomInput(bound, seed) }

// NewSelectivityInput builds the SI baseline.
func NewSelectivityInput(sel *Selectivity, bound Time, seed int64) Strategy {
	return baseline.NewSelectivityInput(sel, bound, seed)
}

// NewRandomState builds the RS baseline.
func NewRandomState(bound Time, seed int64) Strategy { return baseline.NewRandomState(bound, seed) }

// NewSelectivityState builds the SS baseline.
func NewSelectivityState(sel *Selectivity, bound Time, seed int64) Strategy {
	return baseline.NewSelectivityState(sel, bound, seed)
}

// EstimatePositionUtility learns the per-type position histograms the PI
// baseline ranks events by.
func (s *System) EstimatePositionUtility(training Stream) *PositionUtility {
	return baseline.EstimatePositionUtility(s.machine, training)
}

// NewPositionInput builds the eSPICE-style position-based input shedder.
func NewPositionInput(util *PositionUtility, bound Time, seed int64) Strategy {
	return baseline.NewPositionInput(util, bound, seed)
}

// NoShedding returns the pass-through strategy.
func NoShedding() Strategy { return shed.None{} }

// Dataset generators.

// DS1Config parameterizes the DS1 generator (Table II).
type DS1Config = gen.DS1Config

// DS2Config parameterizes the DS2 generator (Table II).
type DS2Config = gen.DS2Config

// CitiBikeConfig parameterizes the bike-trip simulator.
type CitiBikeConfig = citibike.Config

// ClusterTraceConfig parameterizes the cluster-trace simulator.
type ClusterTraceConfig = gcluster.Config

// DS1 generates the paper's DS1 synthetic stream.
func DS1(cfg DS1Config) Stream { return gen.DS1(cfg) }

// DS2 generates the paper's DS2 synthetic stream.
func DS2(cfg DS2Config) Stream { return gen.DS2(cfg) }

// CitiBike generates a bike-trip stream with hot-path bursts.
func CitiBike(cfg CitiBikeConfig) Stream { return citibike.Generate(cfg) }

// ClusterTrace generates a cluster task-lifecycle stream.
func ClusterTrace(cfg ClusterTraceConfig) Stream { return gcluster.Generate(cfg) }

// Paper queries.

// Q1 returns Listing 2's Q1 (three-step correlation over DS1).
func Q1(window string) *Query { return query.Q1(window) }

// Q2 returns Listing 2's Q2 (Kleene query over DS1).
func Q2(window string, minReps, maxReps int) *Query { return query.Q2(window, minReps, maxReps) }

// Q3 returns Listing 2's Q3 (aggregate query over DS2).
func Q3(window string) *Query { return query.Q3(window) }

// Q4 returns the non-monotonic negation query of §VI-H.
func Q4(window string) *Query { return query.Q4(window) }

// HotPaths returns Listing 1's hot-path query.
func HotPaths(window string, minTrips, maxTrips int) *Query {
	return query.HotPaths(window, minTrips, maxTrips)
}

// ClusterTasks returns Listing 3's task-lifecycle query.
func ClusterTasks(window string) *Query { return query.ClusterTasks(window) }
