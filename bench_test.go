package cepshed_test

// The bench suite regenerates every figure of the paper's evaluation (one
// benchmark per figure, quarter-scale streams so a full -bench=. run
// stays tractable) and adds micro/ablation benches for the design choices
// DESIGN.md calls out: exact vs greedy knapsack, classifier cost, engine
// throughput with and without structural load.

import (
	"math/rand"
	"testing"

	"cepshed"
	"cepshed/internal/core"
	"cepshed/internal/engine"
	"cepshed/internal/event"
	"cepshed/internal/experiments"
	"cepshed/internal/gen"
	"cepshed/internal/knapsack"
	"cepshed/internal/nfa"
	"cepshed/internal/query"
	"cepshed/internal/runtime"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := experiments.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(opts)
		if len(tables) == 0 {
			b.Fatal("no output tables")
		}
	}
}

func BenchmarkFig1PartialMatches(b *testing.B)   { benchFigure(b, "fig1") }
func BenchmarkFig4LatencyBounds(b *testing.B)    { benchFigure(b, "fig4") }
func BenchmarkFig5HybridDetail(b *testing.B)     { benchFigure(b, "fig5") }
func BenchmarkFig6SelectionQuality(b *testing.B) { benchFigure(b, "fig6") }
func BenchmarkFig7Variance(b *testing.B)         { benchFigure(b, "fig7") }
func BenchmarkFig8WindowSize(b *testing.B)       { benchFigure(b, "fig8") }
func BenchmarkFig9PatternLength(b *testing.B)    { benchFigure(b, "fig9") }
func BenchmarkFig10TimeSlices(b *testing.B)      { benchFigure(b, "fig10") }
func BenchmarkFig11ResourceCosts(b *testing.B)   { benchFigure(b, "fig11") }
func BenchmarkFig12Adaptivity(b *testing.B)      { benchFigure(b, "fig12") }
func BenchmarkFig13ClusterGrid(b *testing.B)     { benchFigure(b, "fig13") }
func BenchmarkFig14NonMonotonic(b *testing.B)    { benchFigure(b, "fig14") }
func BenchmarkFig15CitiBike(b *testing.B)        { benchFigure(b, "fig15") }
func BenchmarkFig16Cluster(b *testing.B)         { benchFigure(b, "fig16") }

// BenchmarkEngineThroughput measures raw engine event processing on the
// Q1/DS1 workload (real wall-clock cost per event, all predicates and
// partial-match maintenance included).
func BenchmarkEngineThroughput(b *testing.B) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 1, InterArrival: 30 * event.Microsecond})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := engine.New(m, engine.DefaultCosts())
		for _, e := range s {
			en.Process(e)
		}
	}
	b.ReportMetric(float64(len(s)), "events/op")
}

// BenchmarkEngineKleene measures the Kleene-heavy hot-path workload.
func BenchmarkEngineKleene(b *testing.B) {
	m := nfa.MustCompile(query.HotPaths("5 min", 2, 5))
	s := cepshed.CitiBike(cepshed.CitiBikeConfig{Trips: 3000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := engine.New(m, engine.DefaultCosts())
		for _, e := range s {
			en.Process(e)
		}
	}
}

// BenchmarkEngineNegation measures the eager-negation hot path (Q4/DS1:
// interior NOT B guard killing runs as B events arrive).
func BenchmarkEngineNegation(b *testing.B) {
	m := nfa.MustCompile(query.Q4("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 1, InterArrival: 30 * event.Microsecond})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := engine.New(m, engine.DefaultCosts())
		for _, e := range s {
			en.Process(e)
		}
	}
	b.ReportMetric(float64(len(s)), "events/op")
}

// BenchmarkEngineNegationDeferred is the same workload with witness-based
// deferred negation (the shed-eligible mode of §VI-H).
func BenchmarkEngineNegationDeferred(b *testing.B) {
	m := nfa.MustCompile(query.Q4("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 5000, Seed: 1, InterArrival: 30 * event.Microsecond})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := engine.New(m, engine.DefaultCosts())
		en.DeferredNegation = true
		for _, e := range s {
			en.Process(e)
		}
	}
	b.ReportMetric(float64(len(s)), "events/op")
}

// Ablation: exact dynamic-programming knapsack vs the greedy
// approximation of §V-C, at shedding-set sizes typical for the cost model
// (tens of class cells).
func benchKnapsack(b *testing.B, solver knapsack.Solver, n int) {
	rng := rand.New(rand.NewSource(1))
	items := make([]knapsack.Item, n)
	for i := range items {
		items[i] = knapsack.Item{ID: i, Value: rng.Float64(), Weight: 0.01 + rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knapsack.MinCover(items, 0.4*float64(n)/2, solver)
	}
}

func BenchmarkKnapsackExact40(b *testing.B)   { benchKnapsack(b, knapsack.Exact, 40) }
func BenchmarkKnapsackGreedy40(b *testing.B)  { benchKnapsack(b, knapsack.Greedy, 40) }
func BenchmarkKnapsackExact200(b *testing.B)  { benchKnapsack(b, knapsack.Exact, 200) }
func BenchmarkKnapsackGreedy200(b *testing.B) { benchKnapsack(b, knapsack.Greedy, 200) }

// Ablation: per-partial-match classification cost (the O(tree depth)
// online path of §V-B).
func BenchmarkClassify(b *testing.B) {
	m := nfa.MustCompile(query.Q1("8ms"))
	train := gen.DS1(gen.DS1Config{Events: 3000, Seed: 1, InterArrival: 30 * event.Microsecond})
	model := core.MustTrain(m, train, core.TrainConfig{})
	en := engine.New(m, engine.DefaultCosts())
	s := gen.DS1(gen.DS1Config{Events: 500, Seed: 2, InterArrival: 30 * event.Microsecond})
	for _, e := range s {
		en.Process(e)
	}
	pms := en.PartialMatches()
	if len(pms) == 0 {
		b.Fatal("no live PMs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Classify(pms[i%len(pms)])
	}
}

// Ablation: offline cost-model training end to end.
func BenchmarkTrainCostModel(b *testing.B) {
	m := nfa.MustCompile(query.Q1("8ms"))
	train := gen.DS1(gen.DS1Config{Events: 3000, Seed: 1, InterArrival: 30 * event.Microsecond})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MustTrain(m, train, core.TrainConfig{})
	}
}

// Ablation: full hybrid run vs no-shedding run on the same stream.
func BenchmarkHybridRun(b *testing.B) {
	sys := cepshed.MustCompile(cepshed.Q1("8ms"))
	train := cepshed.DS1(cepshed.DS1Config{Events: 3000, Seed: 1, InterArrival: 15 * cepshed.Microsecond})
	work := cepshed.DS1(cepshed.DS1Config{Events: 5000, Seed: 2, InterArrival: 15 * cepshed.Microsecond})
	model := sys.MustTrain(train, cepshed.TrainConfig{})
	truth := sys.Run(work, cepshed.RunOptions{})
	bound := truth.Latency.Mean() / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := sys.NewHybrid(model, cepshed.HybridConfig{Bound: bound, Adapt: true})
		sys.Run(work, cepshed.RunOptions{Strategy: h})
	}
}

func BenchmarkNoShedRun(b *testing.B) {
	sys := cepshed.MustCompile(cepshed.Q1("8ms"))
	work := cepshed.DS1(cepshed.DS1Config{Events: 5000, Seed: 2, InterArrival: 15 * cepshed.Microsecond})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(work, cepshed.RunOptions{})
	}
}

// Throughput scaling of the sharded wall-clock runtime vs the
// sequential engine on the Q1/DS1 workload. IDRange is widened to 64 so
// hash partitioning has enough distinct correlation keys to spread load
// across 8 shards (the default 10 IDs cap effective parallelism).
// BenchmarkRuntimeSequentialBaseline is the same stream through one
// bare engine — the number the shard counts are compared against in
// EXPERIMENTS.md.
func runtimeBenchStream() (*nfa.Machine, event.Stream) {
	m := nfa.MustCompile(query.Q1("8ms"))
	s := gen.DS1(gen.DS1Config{Events: 20000, Seed: 1, IDRange: 64, InterArrival: 15 * event.Microsecond})
	return m, s
}

func benchRuntimeShards(b *testing.B, shards int) {
	m, s := runtimeBenchStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := runtime.New(m, runtime.Config{Shards: shards})
		for _, e := range s {
			rt.Offer(e)
		}
		rt.Close()
	}
	b.ReportMetric(float64(len(s)), "events/op")
}

func BenchmarkRuntimeShards1(b *testing.B) { benchRuntimeShards(b, 1) }
func BenchmarkRuntimeShards4(b *testing.B) { benchRuntimeShards(b, 4) }
func BenchmarkRuntimeShards8(b *testing.B) { benchRuntimeShards(b, 8) }

func BenchmarkRuntimeSequentialBaseline(b *testing.B) {
	m, s := runtimeBenchStream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ms := engine.Sequential(m, engine.DefaultCosts(), s, false); len(ms) == 0 {
			b.Fatal("no matches")
		}
	}
	b.ReportMetric(float64(len(s)), "events/op")
}

// Query parsing throughput.
func BenchmarkParseQuery(b *testing.B) {
	src := cepshed.Q3("8ms").Raw
	for i := 0; i < b.N; i++ {
		if _, err := cepshed.ParseQuery(src); err != nil {
			b.Fatal(err)
		}
	}
}
