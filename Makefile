# Tier-1 verification is `make check`: vet + build + race-enabled tests.
# The sharded runtime (internal/runtime) is concurrent, so -race is part
# of the default gate, not an optional extra.

GO ?= go

.PHONY: check vet build test race bench bench-runtime bench-smoke bench-baseline bench-compare chaos chaos-net fuzz-seeds fuzz recover-smoke multiquery-smoke cluster-smoke profile profile-shed

check: vet build race fuzz-seeds chaos chaos-net recover-smoke multiquery-smoke cluster-smoke bench-smoke profile-shed bench-compare

# Pinned so `go run` resolves one known-good version from the module
# cache or proxy. Offline (no proxy, cold cache) the probe fails and vet
# degrades to `go vet` alone instead of failing the gate.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2024.1.1

vet:
	$(GO) vet ./...
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./...; \
	else \
		echo "vet: $(STATICCHECK) unavailable (offline or cold module cache); skipping staticcheck"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The chaos suite (docs/ROBUSTNESS.md + docs/DURABILITY.md +
# docs/CLUSTER.md): supervisor recovery, circuit breaker failover,
# degradation ladder, corrupt-input, crash-recovery differential,
# kill-during-snapshot, node failure detection, cluster failover, and
# concurrent fault-injection tests, always under the race detector.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Supervisor|CircuitBreaker|AllShardsFailed|DeadLetter|Rebuild|Degradation|Ladder|Admission|LineDecoder|Panic|Switchable|Chain|Corrupter|Stall|Healthz|Ingest|Recover|Recovery|Snapshot|Durab|WAL|Checkpoint|Torn|Monotone|FailStage|Failover|Placement|Detector|Takeover|Handoff|Cluster|Rendezvous|Steal|WorkSteal' \
		./internal/runtime ./internal/fault ./internal/shed ./internal/checkpoint ./internal/cluster ./cmd/cepserved

# End-to-end durability drill: run the real server, SIGKILL it
# mid-stream, restart against the same -state-dir, and require recovery
# instead of a cold start (see TestRecoverSmoke).
recover-smoke:
	$(GO) test -count=1 -run RecoverSmoke ./cmd/cepserved

# End-to-end multi-tenant drill: two tenants x two queries registered
# over the admin API against one replayed stream; the low-priority
# tenant's Kleene query is driven into overload and the arbiter must
# degrade only that tenant while the other keeps full recall and sane
# p99, then drain cleanly (see TestMultiQuerySmoke, docs/MULTIQUERY.md).
multiquery-smoke:
	$(GO) test -count=1 -run MultiQuerySmoke ./cmd/cepserved

# End-to-end fault-tolerance drill: boot a 3-node cluster of real
# binaries on loopback, do one planned slot handoff, SIGKILL a node
# mid-stream, and require automatic failover to complete every match
# exactly once (see TestClusterSmoke, docs/CLUSTER.md). Offline-safe.
cluster-smoke:
	$(GO) test -count=1 -run ClusterSmoke -timeout 300s ./cmd/cepserved

# Network-partition chaos matrix (docs/CLUSTER.md, docs/ROBUSTNESS.md):
# deterministic fault injection on the inter-node links — dropped acks
# forcing idempotent retries, symmetric and asymmetric partitions,
# partition during handoff and during failover, topology reload with a
# node joining mid-stream — each run ending in a cluster-wide
# conservation audit. Always under the race detector.
chaos-net:
	$(GO) test -race -count=1 \
		-run 'TestChaosNet|TestDetectorAsymmetricPartition|TestTopologyReload|TestNetChaos' \
		./internal/cluster ./internal/fault

# Replay the checked-in fuzz corpora (seeds plus any minimized crashers)
# as a plain regression suite; part of `make check`.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/runtime ./internal/query ./internal/csvio ./internal/checkpoint ./internal/cluster

# Explore new inputs. Crashers land in testdata/fuzz/ — check them in.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecodeNDJSON -fuzztime $(FUZZTIME) ./internal/runtime

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Throughput scaling of the sharded runtime vs the sequential engine
# (numbers recorded in EXPERIMENTS.md).
bench-runtime:
	$(GO) test -bench 'BenchmarkRuntimeShards|BenchmarkRuntimeSequentialBaseline' -run '^$$' .

# Quarter-scale serving-path measurement; part of `make check` as a
# smoke test that the bench harness itself stays runnable (numbers from
# a -quick run are not comparable to the checked-in baselines).
bench-smoke:
	$(GO) run ./cmd/cepbench -runtime-bench -quick

# Perf trajectory (docs/PERFORMANCE.md): bench-baseline records
# BENCH_engine.json (engine hot path) and BENCH_runtime.json (full
# serving path: runtime+WAL+NDJSON) on this machine; bench-compare
# re-measures both and fails on a regression past each gate's tolerance
# (skipping the hard gate when a baseline was recorded on different
# hardware).
bench-baseline:
	$(GO) run ./cmd/cepbench -engine-bench -bench-out BENCH_engine.json
	$(GO) run ./cmd/cepbench -runtime-bench -bench-out BENCH_runtime.json

bench-compare:
	$(GO) run ./cmd/cepbench -engine-bench -bench-compare BENCH_engine.json
	$(GO) run ./cmd/cepbench -runtime-bench -bench-compare BENCH_runtime.json

# Profile an overloaded async-planner run and prove from the pprof
# labels that shedding-set selection, the knapsack, and admission-table
# compilation never execute on a serving worker's stack (they must only
# appear under cep_role=shed_planner). Part of `make check`: if a future
# change moves selection work back onto the hot path, this fails loudly.
SHED_PROFILE ?= /tmp/cepshed-shed.pprof
profile-shed:
	$(GO) run ./cmd/cepbench -profile-shed $(SHED_PROFILE)
	@$(GO) tool pprof -traces $(SHED_PROFILE) | awk ' \
		function flush() { \
			if (inworker && sel) { bad++; printf "profile-shed: FORBIDDEN selection work on worker stack:\n%s", block } \
			if (sel && !inplanner) { stray++; printf "profile-shed: selection sample outside the shed_planner label:\n%s", block } \
			inworker=0; inplanner=0; sel=0; block="" \
		} \
		/^-----------\+/ { flush(); next } \
		{ block = block $$0 "\n" } \
		/cep_role: +worker/ { inworker=1; workers++ } \
		/cep_role: +shed_planner/ { inplanner=1; planner++ } \
		/SelectSheddingSet|selectFromPlanCells|knapsack\.|CompileAdmitTable/ { sel=1 } \
		END { \
			flush(); \
			if (workers == 0) { print "profile-shed: no cep_role=worker samples; pprof labeling is broken"; exit 1 } \
			if (bad > 0 || stray > 0) { exit 1 } \
			print "profile-shed: ok — no selection/knapsack work on " workers " worker sample block(s) (" planner " planner block(s) sampled)" \
		}'

# Grab a CPU profile from a running cepserved and open the pprof UI.
# The /debug/pprof routes share -admin-token; pass the same token here.
# Usage: make profile [HOST=localhost:8080] [SECONDS=10] [TOKEN=...]
HOST ?= localhost:8080
SECONDS ?= 10
TOKEN ?=
profile:
	@out=$$(mktemp /tmp/cepserved-cpu-XXXXXX.pb.gz); tok='$(TOKEN)'; \
	echo "profile: sampling $(HOST) for $(SECONDS)s -> $$out"; \
	curl -fsS $${tok:+-H "Authorization: Bearer $$tok"} \
		-o "$$out" "http://$(HOST)/debug/pprof/profile?seconds=$(SECONDS)" && \
	$(GO) tool pprof -top "$$out"
