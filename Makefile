# Tier-1 verification is `make check`: vet + build + race-enabled tests.
# The sharded runtime (internal/runtime) is concurrent, so -race is part
# of the default gate, not an optional extra.

GO ?= go

.PHONY: check vet build test race bench bench-runtime

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Throughput scaling of the sharded runtime vs the sequential engine
# (numbers recorded in EXPERIMENTS.md).
bench-runtime:
	$(GO) test -bench 'BenchmarkRuntimeShards|BenchmarkRuntimeSequentialBaseline' -run '^$$' .
